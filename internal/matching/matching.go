// Package matching solves the maximum-weight degree-constrained subgraph
// problem (Max-DCS) on bipartite graphs and applies it to the T = 1
// special case of REVMAX, which the paper shows is PTIME solvable (§3.2):
// users on one side with degree bound k, items on the other with degree
// bound qᵢ, edge weight p(i,1)·q(u,i,1).
//
// Caveat (documented divergence from the paper): with display limit
// k > 1 a user may receive two same-class items at the same time step, in
// which case Definition 1's same-time competition product makes Rev
// non-edge-separable and the Max-DCS cast is only an upper-bounding
// relaxation. The cast is exact when k = 1 or when all classes are
// singletons; tests pin both facts.
package matching

import (
	"errors"

	"repro/internal/flow"
	"repro/internal/model"
)

// MaxDCSResult is the output of the T=1 exact solver.
type MaxDCSResult struct {
	Strategy *model.Strategy
	// Weight is the total edge weight Σ p·q of the selected subgraph (the
	// separable objective the solver optimizes).
	Weight float64
}

// SolveT1 solves the Max-DCS relaxation of REVMAX restricted to time
// step t of the instance. Every candidate (u,i,t) becomes an edge with
// weight p(i,t)·q(u,i,t); user degrees are bounded by k and item degrees
// by qᵢ. It returns an error if the instance has no time step t.
func SolveT1(in *model.Instance, t model.TimeStep) (MaxDCSResult, error) {
	if t < 1 || int(t) > in.T {
		return MaxDCSResult{}, errors.New("matching: time step outside horizon")
	}
	var g flow.Graph
	src := g.AddNode()
	sink := g.AddNode()
	userNode := make([]int, in.NumUsers)
	for u := range userNode {
		userNode[u] = g.AddNode()
		g.AddEdge(src, userNode[u], in.K, 0)
	}
	itemNode := make([]int, in.NumItems())
	for i := range itemNode {
		itemNode[i] = g.AddNode()
		g.AddEdge(itemNode[i], sink, in.Capacity(model.ItemID(i)), 0)
	}
	type edgeRef struct {
		id int
		z  model.Triple
		w  float64
	}
	var refs []edgeRef
	for u := 0; u < in.NumUsers; u++ {
		for _, c := range in.UserCandidates(model.UserID(u)) {
			if c.T != t {
				continue
			}
			w := in.Price(c.I, t) * c.Q
			id := g.AddEdge(userNode[u], itemNode[c.I], 1, -w)
			refs = append(refs, edgeRef{id, c.Triple, w})
		}
	}
	if _, _, err := g.MinCostFlow(src, sink, true); err != nil {
		return MaxDCSResult{}, err
	}
	s := model.NewStrategy()
	weight := 0.0
	for _, r := range refs {
		if g.Flow(r.id) > 0 {
			s.Add(r.z)
			weight += r.w
		}
	}
	return MaxDCSResult{Strategy: s, Weight: weight}, nil
}

// SolveMyopic runs SolveT1 independently for every time step and unions
// the results. This is the "static approach rolled out myopically over a
// horizon" that the paper's introduction describes as the best a
// snapshot method can do; note it shares item capacity across steps by
// resolving each step against the remaining capacity, in user-time
// order, so the union stays valid.
func SolveMyopic(in *model.Instance) (*model.Strategy, error) {
	s := model.NewStrategy()
	used := make([]map[model.UserID]struct{}, in.NumItems())
	for t := model.TimeStep(1); int(t) <= in.T; t++ {
		res, err := SolveT1(in, t)
		if err != nil {
			return nil, err
		}
		for _, z := range res.Strategy.Triples() {
			m := used[z.I]
			if m == nil {
				m = make(map[model.UserID]struct{})
				used[z.I] = m
			}
			if _, ok := m[z.U]; !ok && len(m) >= in.Capacity(z.I) {
				continue // capacity consumed by earlier steps
			}
			m[z.U] = struct{}{}
			s.Add(z)
		}
	}
	return s, nil
}
