package matching_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/revenue"
	"repro/internal/testgen"
)

// tinyT1 builds a random T=1 instance small enough for Optimal.
func tinyT1(rng *dist.RNG, k int, singletonClasses bool) *model.Instance {
	p := testgen.Params{
		Users: 2, Items: 3, Classes: 3, T: 1, K: k,
		MaxCap: 2, CandProb: 0.8, MinPrice: 1, MaxPrice: 20,
	}
	if !singletonClasses {
		p.Classes = 2
	}
	return testgen.Random(rng, p)
}

func TestSolveT1MatchesOptimalWithK1(t *testing.T) {
	// With k = 1 no user can get two same-class items at one step, so the
	// Max-DCS cast is exact (§3.2).
	rng := dist.NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		in := tinyT1(rng, 1, false)
		if in.NumCandidates() == 0 || in.NumCandidates() > 14 {
			continue
		}
		res, err := matching.SolveT1(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.CheckValid(res.Strategy); err != nil {
			t.Fatalf("Max-DCS output invalid: %v", err)
		}
		opt, err := core.Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		got := revenue.Revenue(in, res.Strategy)
		if math.Abs(got-opt.Revenue) > 1e-6 {
			t.Fatalf("trial %d: Max-DCS revenue %v != optimal %v", trial, got, opt.Revenue)
		}
	}
}

func TestSolveT1MatchesOptimalWithSingletonClasses(t *testing.T) {
	// Singleton classes make Rev edge-separable even for k > 1.
	rng := dist.NewRNG(2)
	for trial := 0; trial < 20; trial++ {
		in := tinyT1(rng, 2, true)
		if in.NumCandidates() == 0 || in.NumCandidates() > 14 {
			continue
		}
		res, err := matching.SolveT1(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := core.Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		got := revenue.Revenue(in, res.Strategy)
		if math.Abs(got-opt.Revenue) > 1e-6 {
			t.Fatalf("trial %d: Max-DCS revenue %v != optimal %v", trial, got, opt.Revenue)
		}
	}
}

func TestSolveT1WeightIsUpperBoundOnSeparableRevenue(t *testing.T) {
	// The separable weight Σ p·q always upper-bounds the realized revenue
	// of the selected strategy (competition only subtracts).
	rng := dist.NewRNG(3)
	for trial := 0; trial < 20; trial++ {
		in := tinyT1(rng, 2, false)
		res, err := matching.SolveT1(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		rev := revenue.Revenue(in, res.Strategy)
		if rev > res.Weight+1e-9 {
			t.Fatalf("revenue %v exceeds separable weight %v", rev, res.Weight)
		}
	}
}

func TestSolveT1RejectsBadTimeStep(t *testing.T) {
	rng := dist.NewRNG(4)
	in := tinyT1(rng, 1, false)
	if _, err := matching.SolveT1(in, 0); err == nil {
		t.Fatal("t=0 accepted")
	}
	if _, err := matching.SolveT1(in, model.TimeStep(in.T+1)); err == nil {
		t.Fatal("t beyond horizon accepted")
	}
}

func TestSolveT1GreedyNeverBeatsIt(t *testing.T) {
	// On T=1 instances with k=1, G-Greedy cannot beat the exact solver.
	rng := dist.NewRNG(5)
	for trial := 0; trial < 20; trial++ {
		in := tinyT1(rng, 1, false)
		res, err := matching.SolveT1(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		exact := revenue.Revenue(in, res.Strategy)
		gg := core.GGreedy(in)
		if gg.Revenue > exact+1e-6 {
			t.Fatalf("greedy %v beats exact %v on T=1 k=1", gg.Revenue, exact)
		}
	}
}

func TestSolveMyopicValid(t *testing.T) {
	rng := dist.NewRNG(6)
	for trial := 0; trial < 10; trial++ {
		p := testgen.Default()
		p.K = 1
		in := testgen.Random(rng, p)
		s, err := matching.SolveMyopic(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.CheckValid(s); err != nil {
			t.Fatalf("myopic union invalid: %v", err)
		}
	}
}

func TestSolveMyopicSingleStepEqualsSolveT1(t *testing.T) {
	rng := dist.NewRNG(7)
	p := testgen.Default()
	p.T = 1
	p.K = 1
	in := testgen.Random(rng, p)
	s, err := matching.SolveMyopic(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := matching.SolveT1(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != res.Strategy.Len() {
		t.Fatalf("myopic %d triples != direct %d", s.Len(), res.Strategy.Len())
	}
}
