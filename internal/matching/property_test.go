package matching_test

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/matching"
	"repro/internal/matroid"
	"repro/internal/model"
	"repro/internal/testgen"
)

// TestPropertyMyopicRespectsConstraints: the myopic matching baseline,
// like every planner, must return strategies that are valid on the
// instance — display partition matroid, per-item capacity, and only
// real candidates — across random testgen instances.
func TestPropertyMyopicRespectsConstraints(t *testing.T) {
	rng := dist.NewRNG(909)
	for trial := 0; trial < 25; trial++ {
		p := testgen.Params{
			Users:    2 + rng.Intn(7),
			Items:    2 + rng.Intn(7),
			T:        1 + rng.Intn(4),
			K:        1 + rng.Intn(3),
			MaxCap:   1 + rng.Intn(4),
			CandProb: rng.Uniform(0.25, 0.9),
			MinPrice: 1,
			MaxPrice: 50,
		}
		p.Classes = 1 + rng.Intn(p.Items)
		in := testgen.Random(rng, p)
		s, err := matching.SolveMyopic(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := in.CheckValid(s); err != nil {
			t.Errorf("trial %d: myopic strategy invalid: %v", trial, err)
		}
		display := matroid.NewPartition(in.K)
		capacity := matroid.NewCapacity(func(i model.ItemID) int { return in.Capacity(i) })
		if !matroid.NewIntersection(display, capacity).Independent(s) {
			t.Errorf("trial %d: myopic strategy not independent in display∩capacity", trial)
		}
		for _, z := range s.Triples() {
			if in.Q(z.U, z.I, z.T) <= 0 {
				t.Errorf("trial %d: myopic selected non-candidate %v", trial, z)
			}
		}
	}
}

// TestPropertySingleStepSolutions: per-step MaxDCS solutions respect
// the same constraints restricted to their step, for every step of
// random instances.
func TestPropertySingleStepSolutions(t *testing.T) {
	rng := dist.NewRNG(910)
	for trial := 0; trial < 15; trial++ {
		p := testgen.Default()
		p.Users = 3 + rng.Intn(5)
		p.T = 1 + rng.Intn(4)
		p.CandProb = rng.Uniform(0.3, 0.9)
		in := testgen.Random(rng, p)
		for ts := model.TimeStep(1); int(ts) <= in.T; ts++ {
			res, err := matching.SolveT1(in, ts)
			if err != nil {
				t.Fatalf("trial %d t=%d: %v", trial, ts, err)
			}
			if err := in.CheckValid(res.Strategy); err != nil {
				t.Errorf("trial %d t=%d: invalid single-step strategy: %v", trial, ts, err)
			}
			for _, z := range res.Strategy.Triples() {
				if z.T != ts {
					t.Errorf("trial %d: SolveT1(%d) returned triple at t=%d", trial, ts, z.T)
				}
			}
		}
	}
}
