package store_test

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/store"
)

// ExampleOpen walks the full durability cycle: append events to the
// write-ahead log, stamp a snapshot (which compacts the log up to its
// LSN), crash without closing, and recover by loading the snapshot and
// replaying the tail.
func ExampleOpen() {
	dir, err := os.MkdirTemp("", "store-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	s, err := store.Open(dir, store.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Log two adoptions, then capture everything applied so far in a
	// snapshot stamped with the next LSN.
	s.Append(store.Record{Type: store.RecEvent, User: 7, Item: 3, T: 1, Adopted: true})
	s.Append(store.Record{Type: store.RecEvent, User: 9, Item: 3, T: 1})
	snapLSN := s.NextLSN()
	err = s.WriteSnapshot(snapLSN, func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "application state covering [0,%d)", snapLSN)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	// More events after the snapshot, synced (group commit), then the
	// process dies without a clean Close.
	s.Append(store.Record{Type: store.RecAdvance, T: 2})
	s.Append(store.Record{Type: store.RecEvent, User: 7, Item: 5, T: 2, Adopted: true})
	s.Sync()
	s.Kill()

	// Recovery: reopen, load the newest snapshot, replay the tail.
	r, err := store.Open(dir, store.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	snaps := r.Snapshots()
	from := snaps[len(snaps)-1]
	rc, err := r.OpenSnapshot(from)
	if err != nil {
		log.Fatal(err)
	}
	img, _ := io.ReadAll(rc)
	rc.Close()
	fmt.Printf("snapshot at LSN %d: %q\n", from, img)
	stats, err := r.Replay(from, func(lsn store.LSN, rec store.Record) error {
		fmt.Printf("replay LSN %d: type %d\n", lsn, rec.Type)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d records, torn tail: %v\n", stats.Records, stats.Torn)
	// Output:
	// snapshot at LSN 2: "application state covering [0,2)"
	// replay LSN 2: type 3
	// replay LSN 3: type 1
	// replayed 2 records, torn tail: false
}
