package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dist"
)

// randRecord draws a structurally valid record of a random type.
func randRecord(rng *dist.RNG) Record {
	switch rng.Intn(5) {
	case 0:
		return Record{Type: RecEvent, User: int32(rng.Intn(1000)), Item: int32(rng.Intn(50)),
			T: int32(1 + rng.Intn(10)), Adopted: rng.Intn(2) == 0}
	case 1:
		return Record{Type: RecSetStock, Item: int32(rng.Intn(50)), Stock: int64(rng.Intn(100))}
	case 2:
		return Record{Type: RecAdvance, T: int32(1 + rng.Intn(10))}
	case 3:
		return Record{Type: RecPlanSwap, Revision: int64(rng.Intn(1 << 20))}
	default:
		return Record{Type: RecScalePrice, Item: int32(rng.Intn(50)), T: int32(1 + rng.Intn(10)),
			Factor: 0.25 + rng.Float64()}
	}
}

func appendAll(t *testing.T, s *Store, recs []Record) {
	t.Helper()
	for i, rec := range recs {
		lsn, err := s.Append(rec)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := s.NextLSN() - 1; lsn != want {
			t.Fatalf("append %d returned LSN %d, NextLSN-1 is %d", i, lsn, want)
		}
	}
}

func replayAll(t *testing.T, s *Store, from LSN) []Record {
	t.Helper()
	var got []Record
	stats, err := s.Replay(from, func(lsn LSN, rec Record) error {
		if want := from + LSN(len(got)); lsn != want {
			t.Fatalf("replay delivered LSN %d, want %d", lsn, want)
		}
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.Records != int64(len(got)) {
		t.Fatalf("stats.Records = %d, callback saw %d", stats.Records, len(got))
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(1)
	recs := make([]Record, 500)
	for i := range recs {
		recs[i] = randRecord(rng)
	}
	appendAll(t, s, recs)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.TornTail() {
		t.Fatal("clean close reported a torn tail")
	}
	if got := s2.NextLSN(); got != 500 {
		t.Fatalf("NextLSN after reopen = %d, want 500", got)
	}
	got := replayAll(t, s2, 0)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(2)
	recs := make([]Record, 300)
	for i := range recs {
		recs[i] = randRecord(rng)
	}
	appendAll(t, s, recs)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	s2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := replayAll(t, s2, 0)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records across segments, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	// Replaying from a mid-log LSN skips earlier segments but stays exact.
	tail := replayAll(t, s2, 123)
	if len(tail) != len(recs)-123 {
		t.Fatalf("tail replay returned %d records, want %d", len(tail), len(recs)-123)
	}
	for i := range tail {
		if tail[i] != recs[123+i] {
			t.Fatalf("tail record %d mismatch", i)
		}
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(3)
	recs := make([]Record, 50)
	for i := range recs {
		recs[i] = randRecord(rng)
	}
	appendAll(t, s, recs)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Kill()

	// Tear the final record: chop a few bytes off the segment.
	segs, _, err := listDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	path := segs[len(segs)-1].path
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	defer s2.Close()
	if !s2.TornTail() {
		t.Fatal("torn tail not reported")
	}
	if got := s2.NextLSN(); got != 49 {
		t.Fatalf("NextLSN after torn-tail truncation = %d, want 49", got)
	}
	got := replayAll(t, s2, 0)
	if len(got) != 49 {
		t.Fatalf("replayed %d records, want 49 (final record torn)", len(got))
	}
	// The log must accept appends again right where it was cut.
	if lsn, err := s2.Append(recs[49]); err != nil || lsn != 49 {
		t.Fatalf("append after truncation: lsn=%d err=%v", lsn, err)
	}
}

func TestKillLosesUnsyncedBufferOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(4)
	synced := make([]Record, 20)
	for i := range synced {
		synced[i] = randRecord(rng)
	}
	appendAll(t, s, synced)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// These stay in the user-space buffer: a kill -9 must lose them.
	for i := 0; i < 5; i++ {
		if _, err := s.Append(randRecord(rng)); err != nil {
			t.Fatal(err)
		}
	}
	s.Kill()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := replayAll(t, s2, 0)
	if len(got) != len(synced) {
		t.Fatalf("recovered %d records, want exactly the %d synced ones", len(got), len(synced))
	}
	if _, err := s2.Append(randRecord(rng)); err != nil {
		t.Fatal(err)
	}
	if got := s2.NextLSN(); got != 21 {
		t.Fatalf("NextLSN = %d, want 21", got)
	}
}

func TestSyncAlwaysSurvivesKill(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SyncPolicy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(5)
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = randRecord(rng)
	}
	appendAll(t, s, recs)
	s.Kill() // no Sync: SyncAlways must have made each append durable

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := replayAll(t, s2, 0); len(got) != len(recs) {
		t.Fatalf("recovered %d records under SyncAlways, want %d", len(got), len(recs))
	}
}

func TestSnapshotRetentionAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := dist.NewRNG(6)
	var all []Record
	writeSnap := func() LSN {
		lsn := s.NextLSN()
		err := s.WriteSnapshot(lsn, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "state@%d", lsn)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return lsn
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 40; i++ {
			rec := randRecord(rng)
			all = append(all, rec)
			if _, err := s.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		writeSnap()
	}
	snaps := s.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("retained %d snapshots, want 2", len(snaps))
	}
	if snaps[0] != 120 || snaps[1] != 160 {
		t.Fatalf("retained snapshots %v, want [120 160]", snaps)
	}
	// Compaction must have deleted segments fully below LSN 120 ...
	segs, _, err := listDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].start > 120 {
		t.Fatalf("compaction deleted segment containing LSN 120: first segment starts at %d", segs[0].start)
	}
	if len(segs) > 1 && segs[1].start <= 120 {
		t.Fatalf("segment fully below snapshot floor survived compaction: %v", segs)
	}
	// ... while replay from either retained snapshot still works exactly.
	for _, from := range snaps {
		got := replayAll(t, s, from)
		want := all[from:]
		if len(got) != len(want) {
			t.Fatalf("replay from %d: %d records, want %d", from, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replay from %d: record %d mismatch", from, i)
			}
		}
	}
	// Snapshot contents round-trip.
	rc, err := s.OpenSnapshot(snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(data) != "state@160" {
		t.Fatalf("snapshot contents = %q, err=%v", data, err)
	}
	// Replay from before the compaction floor must fail loudly, not
	// silently skip lost records.
	if _, err := s.Replay(0, func(LSN, Record) error { return nil }); err == nil {
		t.Fatal("replay from LSN 0 succeeded despite compaction")
	}
}

func TestSnapshotWriterErrorLeavesNoFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	boom := errors.New("boom")
	if err := s.WriteSnapshot(0, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("WriteSnapshot error = %v, want wrapped boom", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.Contains(ent.Name(), "snap") {
			t.Fatalf("failed snapshot left file %s", ent.Name())
		}
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(7)
	for i := 0; i < 100; i++ {
		if _, err := s.Append(randRecord(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need ≥ 3 segments, got %d", len(segs))
	}
	// Flip a payload byte in the middle of an interior segment.
	path := segs[1].path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err) // Open only repairs the tail; interior damage surfaces at Replay
	}
	defer s2.Close()
	if _, err := s2.Replay(0, func(LSN, Record) error { return nil }); err == nil {
		t.Fatal("mid-log corruption not detected by replay")
	}
}

func TestOpenDiscardsTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000010.snap.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.HasState() {
		t.Fatal("temp files must not count as state")
	}
	if _, err := os.Stat(filepath.Join(dir, "snap-0000000000000010.snap.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp file survived Open")
	}
}

// TestOpenExcludesSecondProcess: the directory flock must reject a
// second concurrent owner — two appenders interleaving frames in one
// segment would corrupt acknowledged-durable records — and release on
// both Close and Kill (a real kill -9 releases it via process death).
func TestOpenExcludesSecondProcess(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second Open on a held dir: %v, want lock error", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Kill()
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Kill: %v", err)
	}
	s3.Close()
}

// TestDirHasStateDoesNotTouchTempFiles: the read-only probe must not
// clean up *.tmp files — that could unlink a live store's in-flight
// atomic snapshot write out from under its rename.
func TestDirHasStateDoesNotTouchTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tmp := filepath.Join(dir, "snap-00000000000000aa.snap.tmp")
	if err := os.WriteFile(tmp, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	DirHasState(dir)
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("DirHasState removed a live temp file: %v", err)
	}
}

func TestDirHasState(t *testing.T) {
	dir := t.TempDir()
	if DirHasState(dir) {
		t.Fatal("empty dir reported state")
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if DirHasState(dir) {
		t.Fatal("empty log reported state")
	}
	if _, err := s.Append(Record{Type: RecAdvance, T: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !DirHasState(dir) {
		t.Fatal("logged record not reported as state")
	}
}

// TestSnapshotAheadOfLogFastForwardsLSN: a snapshot may cover appends
// that were never fsynced — a crash then leaves the snapshot (durable)
// ahead of the log end. Open must resume LSNs past the snapshot;
// otherwise fresh records would reuse covered LSNs and be silently
// skipped by the next recovery's tail replay.
func TestSnapshotAheadOfLogFastForwardsLSN(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(8)
	for i := 0; i < 10; i++ {
		if _, err := s.Append(randRecord(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Five more appends stay in the user-space buffer; the snapshot is
	// stamped with their LSNs anyway (it captures applied state).
	for i := 0; i < 5; i++ {
		if _, err := s.Append(randRecord(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteSnapshot(15, func(w io.Writer) error {
		_, err := fmt.Fprint(w, "state@15")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	s.Kill() // the 5 unsynced records die with the process

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.NextLSN(); got != 15 {
		t.Fatalf("NextLSN = %d, want 15 (fast-forwarded past the snapshot)", got)
	}
	// New appends land at 15+ and are visible to a replay anchored at
	// the snapshot.
	want := randRecord(rng)
	if lsn, err := s2.Append(want); err != nil || lsn != 15 {
		t.Fatalf("append after fast-forward: lsn=%d err=%v", lsn, err)
	}
	var got []Record
	if _, err := s2.Replay(15, func(lsn LSN, rec Record) error {
		got = append(got, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("replay from snapshot saw %v, want exactly the post-recovery record", got)
	}
	// A later snapshot stamps past the old one, so retention keeps the
	// truly newest state.
	if err := s2.WriteSnapshot(s2.NextLSN(), func(w io.Writer) error {
		_, err := fmt.Fprint(w, "state@16")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	snaps := s2.Snapshots()
	if snaps[len(snaps)-1] != 16 {
		t.Fatalf("newest snapshot %v, want 16", snaps)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Record{Type: RecAdvance, T: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v, want ErrClosed", err)
	}
}

// TestSnapshotReplayEqualsPureReplay is the compaction-correctness
// property: folding random record sequences through (snapshot at k,
// replay k..n) must reach the same state as replaying everything —
// for a state machine that consumes records the way recovery does.
func TestSnapshotReplayEqualsPureReplay(t *testing.T) {
	type state struct {
		Stock   [8]int64
		Now     int32
		Adopted map[int64]bool
		Expos   int
	}
	newState := func() *state { return &state{Now: 1, Adopted: map[int64]bool{}} }
	applyRec := func(st *state, rec Record) {
		switch rec.Type {
		case RecEvent:
			st.Expos++
			key := int64(rec.User)<<16 | int64(rec.Item%8)
			if rec.Adopted && !st.Adopted[key] {
				st.Adopted[key] = true
				if st.Stock[rec.Item%8] > 0 {
					st.Stock[rec.Item%8]--
				}
			}
		case RecSetStock:
			st.Stock[rec.Item%8] = rec.Stock
		case RecAdvance:
			if rec.T > st.Now {
				st.Now = rec.T
			}
		case RecScalePrice, RecPlanSwap:
		}
	}
	equal := func(a, b *state) bool {
		if a.Stock != b.Stock || a.Now != b.Now || a.Expos != b.Expos || len(a.Adopted) != len(b.Adopted) {
			return false
		}
		for k := range a.Adopted {
			if !b.Adopted[k] {
				return false
			}
		}
		return true
	}

	for trial := 0; trial < 20; trial++ {
		rng := dist.NewRNG(100 + uint64(trial))
		n := 50 + rng.Intn(200)
		cut := rng.Intn(n + 1)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = randRecord(rng)
		}

		// Pure replay.
		pure := newState()
		for _, rec := range recs {
			applyRec(pure, rec)
		}

		// Snapshot at cut + replay of the tail, through a real store with
		// rotation and compaction in play.
		dir := t.TempDir()
		s, err := Open(dir, Options{SegmentBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		mid := newState()
		for i, rec := range recs {
			if i == cut {
				lsn := s.NextLSN()
				if err := s.WriteSnapshot(lsn, func(w io.Writer) error {
					_, err := fmt.Fprintf(w, "%d", lsn)
					return err
				}); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Append(rec); err != nil {
				t.Fatal(err)
			}
			if i < cut {
				applyRec(mid, rec) // state as of the snapshot
			}
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		s.Kill()

		s2, err := Open(dir, Options{SegmentBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		snaps := s2.Snapshots()
		if len(snaps) == 0 {
			t.Fatal("snapshot missing after reopen")
		}
		from := snaps[len(snaps)-1]
		if from != LSN(cut) {
			t.Fatalf("trial %d: snapshot at LSN %d, want %d", trial, from, cut)
		}
		recovered := mid // start from snapshot-time state
		if _, err := s2.Replay(from, func(_ LSN, rec Record) error {
			applyRec(recovered, rec)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		s2.Close()
		if !equal(pure, recovered) {
			t.Fatalf("trial %d (n=%d cut=%d): snapshot+replay diverged from pure replay\npure: %+v\nrec:  %+v",
				trial, n, cut, pure, recovered)
		}
	}
}
