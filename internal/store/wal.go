package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk layout of a WAL segment:
//
//	8 bytes  magic "RVWAL001"
//	8 bytes  start LSN (little endian) of the segment's first record
//	frames:  [4 bytes payload length][4 bytes CRC32-C of payload][payload]
//
// A segment is named wal-<startLSN as 16 hex digits>.log, so a sorted
// directory listing is the log in order. The CRC covers the payload
// only; the length prefix is validated against maxPayload, which is far
// below any legal torn-write garbage a crashed append could leave.

const (
	segMagic     = "RVWAL001"
	segHeaderLen = 8 + 8
	frameHeader  = 4 + 4
	segPrefix    = "wal-"
	segSuffix    = ".log"
	snapPrefix   = "snap-"
	snapSuffix   = ".snap"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks an invalid frame at the end of a segment: the canonical
// signature of a crash mid-append. Scanning stops cleanly at the last
// valid frame.
var errTorn = errors.New("store: torn record")

func segName(start LSN) string { return fmt.Sprintf("%s%016x%s", segPrefix, uint64(start), segSuffix) }
func snapName(lsn LSN) string  { return fmt.Sprintf("%s%016x%s", snapPrefix, uint64(lsn), snapSuffix) }

// parseSeq extracts the LSN from a wal-/snap- file name; ok is false
// for foreign files (including temp files), which the store ignores.
func parseSeq(name, prefix, suffix string) (LSN, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return LSN(n), true
}

// writeSegHeader writes a fresh segment header.
func writeSegHeader(w io.Writer, start LSN) error {
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(start))
	_, err := w.Write(hdr[:])
	return err
}

// readSegHeader validates a segment header and returns its start LSN.
func readSegHeader(r io.Reader) (LSN, error) {
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("store: segment header: %w", err)
	}
	if string(hdr[:8]) != segMagic {
		return 0, fmt.Errorf("store: bad segment magic %q", hdr[:8])
	}
	return LSN(binary.LittleEndian.Uint64(hdr[8:])), nil
}

// appendFrame encodes one framed payload onto buf.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// readFrame reads one frame from r. It returns errTorn for every way a
// crashed append can truncate or corrupt the tail — short header,
// absurd length, short payload, checksum mismatch — but passes real
// I/O errors (a disk returning EIO is not a torn write) through
// verbatim so callers fail loudly instead of truncating good data.
func readFrame(r io.Reader, buf []byte) (payload []byte, frameLen int64, err error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		switch {
		case errors.Is(err, io.EOF):
			return nil, 0, io.EOF // clean end exactly at a frame boundary
		case errors.Is(err, io.ErrUnexpectedEOF):
			return nil, 0, errTorn // partial header
		}
		return nil, 0, fmt.Errorf("store: read frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	want := binary.LittleEndian.Uint32(hdr[4:])
	if n == 0 || n > maxPayload {
		return nil, 0, errTorn
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, errTorn // payload cut short
		}
		return nil, 0, fmt.Errorf("store: read frame payload: %w", err)
	}
	if crc32.Checksum(buf, crcTable) != want {
		return nil, 0, errTorn
	}
	return buf, frameHeader + int64(n), nil
}

// segment is one on-disk log segment known to the store.
type segment struct {
	start LSN    // LSN of the first record
	path  string //
	// count is the number of valid records, known after a scan (or
	// derived from the next segment's start); -1 means not yet scanned.
	count int64
}

func (s segment) String() string { return filepath.Base(s.path) }

// scanSegment walks every frame of the segment at path, calling fn (if
// non-nil) with each record and its LSN. It returns the record count,
// the byte offset just past the last valid frame, and whether the
// segment ends in a torn tail. Decode failures of a CRC-valid payload
// are real corruption and are returned as errors.
func scanSegment(path string, fn func(LSN, Record) error) (count int64, validEnd int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	// Buffer underneath the byte counter: frames are ~25 bytes, so raw
	// file reads would cost two syscalls per record on every boot scan.
	// The counter sits on top and counts logical consumption, keeping
	// validEnd an exact file offset.
	br := newCountingReader(bufio.NewReaderSize(f, 1<<16))
	start, err := readSegHeader(br)
	if err != nil {
		return 0, 0, false, fmt.Errorf("store: %s: %w", filepath.Base(path), err)
	}
	// The header start and the filename always agree when written by
	// this package; a mismatch means header corruption, and trusting
	// the header would silently shift every record's LSN — replaying
	// already-snapshotted records or skipping live ones. Fail loudly.
	if nameLSN, ok := parseSeq(filepath.Base(path), segPrefix, segSuffix); ok && nameLSN != start {
		return 0, 0, false, fmt.Errorf("store: %s: header start LSN %d does not match filename", filepath.Base(path), start)
	}
	validEnd = segHeaderLen
	var buf [maxPayload]byte
	for {
		payload, _, err := readFrame(br, buf[:0])
		if errors.Is(err, io.EOF) {
			return count, validEnd, false, nil
		}
		if errors.Is(err, errTorn) {
			return count, validEnd, true, nil
		}
		if err != nil {
			return count, validEnd, false, err
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// The frame checksummed clean but the payload is not a record
			// we understand: not a torn write, a format problem.
			return count, validEnd, false, fmt.Errorf("store: %s record %d: %w", filepath.Base(path), count, err)
		}
		if fn != nil {
			if err := fn(start+LSN(count), rec); err != nil {
				return count, validEnd, false, err
			}
		}
		count++
		validEnd = br.n
	}
}

// countingReader tracks how many bytes have been consumed, so the scan
// knows the exact offset of the last valid frame boundary.
type countingReader struct {
	r io.Reader
	n int64
}

func newCountingReader(r io.Reader) *countingReader { return &countingReader{r: r} }

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// listDir partitions the directory into sorted segments and snapshot
// LSNs. With clean set (Open, which owns the directory), leftover temp
// files from interrupted atomic writes are deleted; read-only callers
// (DirHasState) must not, or a probe could unlink a live store's
// in-flight snapshot write out from under its rename.
func listDir(dir string, clean bool) (segs []segment, snaps []LSN, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") {
			if clean {
				os.Remove(filepath.Join(dir, name)) // interrupted atomic write
			}
			continue
		}
		if start, ok := parseSeq(name, segPrefix, segSuffix); ok {
			segs = append(segs, segment{start: start, path: filepath.Join(dir, name), count: -1})
			continue
		}
		if lsn, ok := parseSeq(name, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, lsn)
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].start < segs[b].start })
	sort.Slice(snaps, func(a, b int) bool { return snaps[a] < snaps[b] })
	return segs, snaps, nil
}
