package store

import (
	"io"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestStoreMetrics drives a store with a registry attached through
// append, fsync, rotation, snapshot, and replay, and asserts every WAL
// metric family shows up in a conformance-clean scrape.
func TestStoreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	s, err := Open(dir, Options{
		SyncPolicy:   SyncAlways,
		SegmentBytes: 256, // force rotations
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 32; i++ {
		if _, err := s.Append(Record{Type: RecEvent, User: int32(i), Item: 1, T: 1, Adopted: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteSnapshot(4, func(w io.Writer) error {
		_, err := w.Write([]byte("snapshot"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Replay(4, func(LSN, Record) error { return nil }); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	fams, err := obs.ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("scrape fails conformance: %v\n%s", err, out)
	}
	for name, typ := range map[string]string{
		"revmaxd_wal_append_seconds":          "histogram",
		"revmaxd_wal_fsync_seconds":           "histogram",
		"revmaxd_wal_segment_rotations_total": "counter",
		"revmaxd_snapshot_write_seconds":      "histogram",
		"revmaxd_recovery_replay_seconds":     "gauge",
		"revmaxd_recovery_replayed_records":   "gauge",
	} {
		f := fams[name]
		if f == nil {
			t.Fatalf("metric family %s missing from scrape", name)
		}
		if f.Type != typ {
			t.Fatalf("%s type = %s, want %s", name, f.Type, typ)
		}
	}
	if got := reg.Histogram("revmaxd_wal_append_seconds", "Time to encode and buffer one WAL record, excluding fsync.", obs.LatencyBuckets()).Count(); got != 32 {
		t.Fatalf("append observations = %d, want 32", got)
	}
	if got := reg.Histogram("revmaxd_wal_fsync_seconds", "Time per WAL fsync (flush to stable storage).", obs.LatencyBuckets()).Count(); got < 32 {
		t.Fatalf("fsync observations = %d, want >= 32", got)
	}
	if got := reg.Counter("revmaxd_wal_segment_rotations_total", "WAL segment rotations since process start.").Value(); got == 0 {
		t.Fatal("no segment rotations recorded despite tiny segments")
	}
	if got := reg.Gauge("revmaxd_recovery_replayed_records", "Records replayed by the last WAL replay pass.").Value(); got != 28 {
		t.Fatalf("replayed records = %v, want 28", got)
	}
}
