package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dist"
)

// validSegment builds an in-memory segment image holding recs, plus the
// byte offset of every frame boundary (boundaries[i] = offset after the
// first i records; boundaries[0] is the header length).
func validSegment(recs []Record) (data []byte, boundaries []int64) {
	var buf []byte
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic...)
	var start [8]byte
	hdr = append(hdr, start[:]...)
	buf = append(buf, hdr...)
	boundaries = append(boundaries, int64(len(buf)))
	for _, rec := range recs {
		payload, err := appendRecord(nil, rec)
		if err != nil {
			panic(err)
		}
		buf = appendFrame(buf, payload)
		boundaries = append(boundaries, int64(len(buf)))
	}
	return buf, boundaries
}

// FuzzReplay feeds arbitrary bytes to the store as a WAL segment and
// replays it: whatever the damage — random garbage, bit flips, torn
// tails — Open and Replay must never panic, and truncations of a valid
// log must recover exactly the surviving record prefix with the torn
// tail detected.
func FuzzReplay(f *testing.F) {
	rng := dist.NewRNG(42)
	recs := make([]Record, 24)
	for i := range recs {
		recs[i] = randRecord(rng)
	}
	seed, _ := validSegment(recs)
	f.Add(seed, uint16(0))
	f.Add(seed, uint16(len(seed)-3))
	f.Add(seed[:len(seed)-5], uint16(7))
	f.Add([]byte("RVWAL001garbage"), uint16(0))
	f.Add([]byte{}, uint16(1))

	f.Fuzz(func(t *testing.T, data []byte, cut uint16) {
		// Part 1: arbitrary bytes as a segment. Open may reject (real
		// corruption is allowed to fail loudly) but must never panic, and
		// whatever it accepts must replay without panicking.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if s, err := Open(dir, Options{SyncPolicy: SyncNone}); err == nil {
			_, _ = s.Replay(0, func(LSN, Record) error { return nil })
			s.Kill()
		}

		// Part 2: a valid log truncated at a fuzz-chosen offset must
		// recover the exact prefix of intact records, flag mid-frame cuts
		// as torn, and accept appends again.
		full, bounds := validSegment(recs)
		cutAt := int64(cut) % int64(len(full)+1)
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, segName(0)), full[:cutAt], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir2, Options{SyncPolicy: SyncNone})
		if err != nil {
			t.Fatalf("open of truncated valid log failed: %v", err)
		}
		defer s.Kill()
		wantRecs, wantTorn := 0, cutAt < bounds[0]
		for i := len(bounds) - 1; i >= 0; i-- {
			if cutAt >= bounds[i] {
				wantRecs = i
				wantTorn = cutAt > bounds[i]
				break
			}
		}
		if got := s.NextLSN(); got != LSN(wantRecs) {
			t.Fatalf("cut at %d: NextLSN = %d, want %d", cutAt, got, wantRecs)
		}
		if got := s.TornTail(); got != wantTorn {
			t.Fatalf("cut at %d: TornTail = %v, want %v", cutAt, got, wantTorn)
		}
		n := 0
		if _, err := s.Replay(0, func(lsn LSN, rec Record) error {
			if rec != recs[n] {
				t.Fatalf("cut at %d: replayed record %d = %+v, want %+v", cutAt, n, rec, recs[n])
			}
			n++
			return nil
		}); err != nil {
			t.Fatalf("replay of repaired log: %v", err)
		}
		if n != wantRecs {
			t.Fatalf("cut at %d: replayed %d records, want %d", cutAt, n, wantRecs)
		}
		if _, err := s.Append(Record{Type: RecAdvance, T: 3}); err != nil {
			t.Fatalf("append after torn-tail repair: %v", err)
		}
	})
}
