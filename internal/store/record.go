package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// RecordType discriminates WAL records. The numeric values are part of
// the on-disk format and must never be reused.
type RecordType uint8

const (
	// RecEvent is one adoption-feedback event: user User was shown item
	// Item at step T and did (Adopted) or did not buy it.
	RecEvent RecordType = 1
	// RecSetStock is an exogenous inventory override: item Item's
	// remaining stock becomes Stock.
	RecSetStock RecordType = 2
	// RecAdvance moves the serving clock forward to step T.
	RecAdvance RecordType = 3
	// RecPlanSwap marks that a replan installed plan revision Revision.
	// It is informational — recovery replans from the recovered state
	// rather than trusting a logged plan — but lets offline tooling
	// correlate log positions with plan generations.
	RecPlanSwap RecordType = 4
	// RecScalePrice multiplies item Item's price by Factor for every
	// step in [T, horizon] (a mid-horizon price cut or hike).
	RecScalePrice RecordType = 5
)

// Record is one logical WAL entry. Only the fields of its Type are
// meaningful; the rest stay zero and are not encoded.
type Record struct {
	Type     RecordType
	User     int32   // RecEvent
	Item     int32   // RecEvent, RecSetStock, RecScalePrice
	T        int32   // RecEvent: exposure step; RecAdvance: target; RecScalePrice: first scaled step
	Adopted  bool    // RecEvent
	Stock    int64   // RecSetStock
	Revision int64   // RecPlanSwap
	Factor   float64 // RecScalePrice
}

// Per-type payload sizes (type byte included); decode rejects any other
// length, so a frame that passes the CRC but was written by a different
// (future) format version still fails loudly instead of misparsing.
const (
	eventSize      = 1 + 4 + 4 + 4 + 1
	setStockSize   = 1 + 4 + 8
	advanceSize    = 1 + 4
	planSwapSize   = 1 + 8
	scalePriceSize = 1 + 4 + 4 + 8
)

// maxPayload bounds every record payload; the frame reader uses it to
// reject torn or corrupt length prefixes before allocating.
const maxPayload = 64

// appendRecord encodes rec onto buf (little-endian, fixed width).
func appendRecord(buf []byte, rec Record) ([]byte, error) {
	buf = append(buf, byte(rec.Type))
	switch rec.Type {
	case RecEvent:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.User))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Item))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.T))
		if rec.Adopted {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case RecSetStock:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Item))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Stock))
	case RecAdvance:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.T))
	case RecPlanSwap:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Revision))
	case RecScalePrice:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Item))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.T))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.Factor))
	default:
		return nil, fmt.Errorf("store: unknown record type %d", rec.Type)
	}
	return buf, nil
}

// decodeRecord parses one payload produced by appendRecord.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("store: empty record payload")
	}
	rec := Record{Type: RecordType(payload[0])}
	body := payload[1:]
	switch rec.Type {
	case RecEvent:
		if len(payload) != eventSize {
			return Record{}, fmt.Errorf("store: event record has %d bytes, want %d", len(payload), eventSize)
		}
		rec.User = int32(binary.LittleEndian.Uint32(body[0:]))
		rec.Item = int32(binary.LittleEndian.Uint32(body[4:]))
		rec.T = int32(binary.LittleEndian.Uint32(body[8:]))
		switch body[12] {
		case 0:
		case 1:
			rec.Adopted = true
		default:
			return Record{}, fmt.Errorf("store: event record has adopted byte %d", body[12])
		}
	case RecSetStock:
		if len(payload) != setStockSize {
			return Record{}, fmt.Errorf("store: set-stock record has %d bytes, want %d", len(payload), setStockSize)
		}
		rec.Item = int32(binary.LittleEndian.Uint32(body[0:]))
		rec.Stock = int64(binary.LittleEndian.Uint64(body[4:]))
	case RecAdvance:
		if len(payload) != advanceSize {
			return Record{}, fmt.Errorf("store: advance record has %d bytes, want %d", len(payload), advanceSize)
		}
		rec.T = int32(binary.LittleEndian.Uint32(body[0:]))
	case RecPlanSwap:
		if len(payload) != planSwapSize {
			return Record{}, fmt.Errorf("store: plan-swap record has %d bytes, want %d", len(payload), planSwapSize)
		}
		rec.Revision = int64(binary.LittleEndian.Uint64(body[0:]))
	case RecScalePrice:
		if len(payload) != scalePriceSize {
			return Record{}, fmt.Errorf("store: scale-price record has %d bytes, want %d", len(payload), scalePriceSize)
		}
		rec.Item = int32(binary.LittleEndian.Uint32(body[0:]))
		rec.T = int32(binary.LittleEndian.Uint32(body[4:]))
		rec.Factor = math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
	default:
		return Record{}, fmt.Errorf("store: unknown record type %d", rec.Type)
	}
	return rec, nil
}
