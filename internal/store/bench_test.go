package store

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/dist"
)

func benchRecords(n int) []Record {
	rng := dist.NewRNG(9)
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = randRecord(rng)
	}
	return recs
}

// BenchmarkWALAppend measures append throughput per fsync policy. The
// batch policy is the engine's default: appends share one fsync per
// barrier, so the hot path is encode + buffered write.
func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []SyncPolicy{SyncBatch, SyncNone, SyncAlways} {
		b.Run(pol.String(), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{SyncPolicy: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			recs := benchRecords(1024)
			b.SetBytes(eventSize + frameHeader)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Append(recs[i%len(recs)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := s.Sync(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// buildLog writes an n-record log (with rotation) into dir and returns it.
func buildLog(b testing.TB, dir string, n int) {
	s, err := Open(dir, Options{SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for _, rec := range benchRecords(n) {
		if _, err := s.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRecovery measures Open + full replay as a function of log
// length — the crash-recovery latency curve.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			buildLog(b, dir, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := Open(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				cnt := 0
				if _, err := s.Replay(0, func(LSN, Record) error { cnt++; return nil }); err != nil {
					b.Fatal(err)
				}
				if cnt != n {
					b.Fatalf("replayed %d, want %d", cnt, n)
				}
				s.Kill() // skip the close-time fsync; recovery is the read path
			}
		})
	}
}

// TestStoreBenchReport emits BENCH_store.json (append throughput per
// policy, recovery time vs log length) when BENCH_STORE_OUT is set; CI
// uploads it as an artifact to track durability-path regressions.
func TestStoreBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_STORE_OUT")
	if out == "" {
		t.Skip("BENCH_STORE_OUT not set")
	}
	type appendRow struct {
		Policy       string  `json:"policy"`
		Records      int     `json:"records"`
		Seconds      float64 `json:"seconds"`
		RecordsPerSs float64 `json:"records_per_sec"`
	}
	type recoveryRow struct {
		Records  int     `json:"records"`
		Segments int     `json:"segments"`
		Seconds  float64 `json:"seconds"`
	}
	report := struct {
		GeneratedBy string        `json:"generated_by"`
		Append      []appendRow   `json:"wal_append"`
		Recovery    []recoveryRow `json:"recovery"`
	}{GeneratedBy: "go test -run TestStoreBenchReport ./internal/store"}

	const appendN = 200_000
	for _, pol := range []SyncPolicy{SyncBatch, SyncNone} {
		s, err := Open(t.TempDir(), Options{SyncPolicy: pol})
		if err != nil {
			t.Fatal(err)
		}
		recs := benchRecords(1024)
		start := time.Now()
		for i := 0; i < appendN; i++ {
			if _, err := s.Append(recs[i%len(recs)]); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		el := time.Since(start).Seconds()
		s.Close()
		report.Append = append(report.Append, appendRow{
			Policy: pol.String(), Records: appendN, Seconds: el, RecordsPerSs: float64(appendN) / el,
		})
	}
	for _, n := range []int{1_000, 10_000, 100_000} {
		dir := t.TempDir()
		buildLog(t, dir, n)
		start := time.Now()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Replay(0, func(LSN, Record) error { return nil }); err != nil {
			t.Fatal(err)
		}
		el := time.Since(start).Seconds()
		s.mu.Lock()
		nseg := len(s.segs)
		s.mu.Unlock()
		s.Kill()
		report.Recovery = append(report.Recovery, recoveryRow{Records: n, Segments: nseg, Seconds: el})
	}

	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
