// Package store is the durable-state subsystem of the serving layer: a
// length-prefixed, CRC32-checksummed, fsync-batched write-ahead log of
// serving events with segment rotation, plus snapshot files and
// snapshot-anchored log compaction. The serving engine appends every
// state mutation before applying it, periodically writes a snapshot at
// a log sequence number (LSN), and recovers after a crash by loading
// the latest valid snapshot and replaying the log tail — tolerating a
// torn final record, the signature of dying mid-append.
//
// Directory layout (one store per directory):
//
//	wal-<startLSN:16hex>.log   log segments, in LSN order
//	snap-<lsn:16hex>.snap      snapshots; <lsn> is the first record NOT covered
//	*.tmp                      in-flight atomic writes, discarded at Open
//
// The store knows nothing about snapshot contents — it hands out
// readers and writers and keeps the snapshot/log bookkeeping coherent:
// compaction only ever deletes segments fully covered by a retained
// snapshot, and the two newest snapshots are retained so recovery can
// fall back one generation if the latest turns out unreadable.
package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
)

// LSN is a log sequence number: the zero-based index of a record in the
// store's logical log. The next record appended always receives the
// current NextLSN; snapshots are stamped with the NextLSN at capture
// time, so a snapshot at LSN s covers exactly records [0, s).
type LSN uint64

// SyncPolicy selects when appended records are forced to stable storage.
type SyncPolicy int

const (
	// SyncBatch (the default) fsyncs only at explicit Sync calls — the
	// engine's flush barriers, snapshots, and Close — and on the
	// SyncInterval ticker. Appends between sync points share one fsync
	// (group commit); a crash loses at most the records since the last
	// sync point.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs after every append. Nothing acknowledged is ever
	// lost, at the cost of one fsync per record.
	SyncAlways
	// SyncNone never fsyncs; records reach the kernel on Sync (buffer
	// flush) but stable storage only when the OS decides. Survives
	// process crashes (kill -9), not machine crashes.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the -wal-sync flag spellings to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch", "":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("store: unknown sync policy %q (want always, batch, or none)", s)
}

// Options tunes a store. The zero value is a sane default: batched
// fsync with no background ticker and 4 MiB segments.
type Options struct {
	// SyncPolicy selects the fsync cadence (default SyncBatch).
	SyncPolicy SyncPolicy
	// SyncInterval, with SyncBatch, adds a background ticker that syncs
	// the log at least this often even if no barrier does. 0 disables.
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (≤ 0 means 4 MiB).
	SegmentBytes int64
	// Metrics, when non-nil, is the registry the store publishes its WAL
	// and snapshot metrics on (append/fsync latency histograms, segment
	// rotations, snapshot write duration, recovery replay time). nil
	// disables store metrics entirely.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// ErrClosed is returned by operations on a closed (or crash-killed)
// store.
var ErrClosed = errors.New("store: closed")

// Store is a write-ahead log plus snapshot directory. Append, Sync, and
// WriteSnapshot are safe for concurrent use; Replay is meant for the
// single-threaded recovery phase before serving starts.
type Store struct {
	dir  string
	opts Options
	met  *storeMetrics // nil when Options.Metrics is nil

	mu       sync.Mutex
	segs     []segment // all segments, sorted; last is active
	snaps    []LSN     // snapshot LSNs, ascending
	lock     *os.File  // flock'd LOCK file pinning single-process ownership
	f        *os.File  // active segment
	w        *bufio.Writer
	size     int64 // bytes written to the active segment
	next     LSN   // LSN of the next record to append
	torn     bool  // Open truncated a torn tail
	closed   bool
	appendBf []byte // reusable payload-encoding buffer
	frameBf  []byte // reusable frame-encoding buffer

	errMu    sync.Mutex
	firstErr error // first durability failure (append, sync, ticker)

	snapMu sync.Mutex // serializes snapshot writes (not appends)

	tick     *time.Ticker
	tickStop chan struct{}
	tickWG   sync.WaitGroup
}

// Open opens (creating if necessary) the store rooted at dir. It scans
// the directory, discards leftover temp files, truncates a torn tail
// off the last segment — the residue of a crash mid-append — and
// positions the log for appending. TornTail reports whether truncation
// happened.
func Open(dir string, opts Options) (st *Store, retErr error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// One process per data directory: two appenders interleaving frames
	// in the same active segment would corrupt acknowledged-durable
	// records. flock releases automatically on process death (kill -9
	// included), so a crashed owner never wedges recovery.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	defer func() {
		if retErr != nil {
			lock.Close()
		}
	}()
	segs, snaps, err := listDir(dir, true)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, segs: segs, snaps: snaps, lock: lock,
		met: newStoreMetrics(opts.Metrics)}

	// Scan the last segment to find the append position. A segment so
	// short it lacks even a header is the residue of a crash between
	// file creation and the header write: drop it and fall back.
	for len(s.segs) > 0 {
		last := &s.segs[len(s.segs)-1]
		count, validEnd, torn, err := scanSegment(last.path, nil)
		if err != nil {
			var headerErr bool
			if fi, statErr := os.Stat(last.path); statErr == nil && fi.Size() < segHeaderLen {
				headerErr = true
			}
			if headerErr {
				os.Remove(last.path)
				s.segs = s.segs[:len(s.segs)-1]
				s.torn = true
				continue
			}
			return nil, err
		}
		if torn {
			if err := os.Truncate(last.path, validEnd); err != nil {
				return nil, fmt.Errorf("store: truncating torn tail of %s: %w", last, err)
			}
			s.torn = true
		}
		last.count = count
		s.next = last.start + LSN(count)
		s.size = validEnd
		break
	}
	// A snapshot may be stamped past the surviving log end: snapshots
	// cover appended-but-unsynced records, so a crash can lose a WAL
	// tail the (fsynced) snapshot already captured. Resuming below the
	// snapshot would hand out LSNs it claims to cover — fresh durable
	// records would then be silently skipped by the next recovery's
	// tail replay, and new checkpoints would sort as older than the
	// stale one. Fast-forward past the newest snapshot instead; the gap
	// lives between segments and is never replayed (recovery starts at
	// that snapshot or newer).
	if n := len(s.snaps); n > 0 && s.snaps[n-1] > s.next {
		s.next = s.snaps[n-1]
	}
	switch {
	case len(s.segs) == 0:
		// Fresh directory, or every segment was compacted away.
		if err := s.createSegmentLocked(s.next); err != nil {
			return nil, err
		}
	case s.next > s.segs[len(s.segs)-1].start+LSN(s.segs[len(s.segs)-1].count):
		// Fast-forwarded past the last segment's end: seal it and start
		// a fresh segment at the resumed LSN (a segment's record LSNs are
		// start+index, so appends cannot continue in the old file).
		if err := s.createSegmentLocked(s.next); err != nil {
			return nil, err
		}
	default:
		f, err := os.OpenFile(s.segs[len(s.segs)-1].path, os.O_WRONLY, 0)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		s.f = f
		s.w = bufio.NewWriter(f)
	}
	// SyncAlways needs no ticker (every append is already durable); the
	// other policies do — batch to bound the fsync window, none to at
	// least push user-space buffers to the kernel so kill -9 cannot
	// shed them.
	if opts.SyncPolicy != SyncAlways && opts.SyncInterval > 0 {
		s.tick = time.NewTicker(opts.SyncInterval)
		s.tickStop = make(chan struct{})
		s.tickWG.Add(1)
		go func() {
			defer s.tickWG.Done()
			for {
				select {
				case <-s.tick.C:
					if err := s.Sync(); err != nil && !errors.Is(err, ErrClosed) {
						s.recordErr(err)
					}
				case <-s.tickStop:
					return
				}
			}
		}()
	}
	return s, nil
}

// recordErr keeps the first durability failure for Err. Failed fsyncs
// are especially treacherous — the kernel may mark dirty pages clean,
// so a later Sync can "succeed" after records were already lost —
// which is why the first error is sticky rather than latest-wins.
func (s *Store) recordErr(err error) {
	s.errMu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.errMu.Unlock()
}

// Err returns the first durability failure the store has hit (nil if
// none), including errors from the background sync ticker that no
// caller was around to see.
func (s *Store) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.firstErr
}

// DirHasState reports whether dir holds recoverable store state — any
// snapshot, or any log segment with at least one record. It lets a
// daemon decide between recovery and a cold boot without building an
// instance first.
func DirHasState(dir string) bool {
	segs, snaps, err := listDir(dir, false)
	if err != nil {
		return false
	}
	if len(snaps) > 0 {
		return true
	}
	for _, sg := range segs {
		if fi, err := os.Stat(sg.path); err == nil && fi.Size() > segHeaderLen {
			return true
		}
	}
	return false
}

// HasState reports whether the store holds anything to recover from:
// at least one snapshot or one logged record.
func (s *Store) HasState() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.snaps) > 0 || s.next > 0 ||
		(len(s.segs) > 0 && s.segs[0].start > 0)
}

// TornTail reports whether Open had to truncate a torn final record —
// evidence the previous process died mid-append.
func (s *Store) TornTail() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.torn
}

// NextLSN returns the LSN the next appended record will receive; it is
// also the correct stamp for a snapshot capturing all applied state.
func (s *Store) NextLSN() LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// createSegmentLocked opens a fresh active segment starting at lsn.
// Caller holds s.mu (or is Open, pre-concurrency).
func (s *Store) createSegmentLocked(lsn LSN) error {
	path := filepath.Join(s.dir, segName(lsn))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := writeSegHeader(w, lsn); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.segs = append(s.segs, segment{start: lsn, path: path, count: 0})
	s.f, s.w, s.size = f, w, segHeaderLen
	return syncDir(s.dir)
}

// Append encodes rec, frames it, and writes it to the active segment,
// rotating first if the segment is full. With SyncAlways the record is
// on stable storage when Append returns; otherwise it is durable after
// the next Sync. Returns the record's LSN.
func (s *Store) Append(rec Record) (LSN, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.size >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return 0, err
		}
	}
	var start time.Time
	if s.met != nil {
		start = time.Now()
	}
	payload, err := appendRecord(s.appendBf[:0], rec)
	if err != nil {
		return 0, err
	}
	s.appendBf = payload
	frame := appendFrame(s.frameBf[:0], payload)
	s.frameBf = frame
	if _, err := s.w.Write(frame); err != nil {
		err = fmt.Errorf("store: append: %w", err)
		s.recordErr(err)
		return 0, err
	}
	s.size += int64(len(frame))
	lsn := s.next
	s.next++
	s.segs[len(s.segs)-1].count++
	// Observed before any SyncAlways fsync: append latency is the
	// encode+buffer cost, fsync latency is its own histogram.
	s.met.observeAppend(start)
	if s.opts.SyncPolicy == SyncAlways {
		if err := s.syncLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// rotateLocked seals the active segment (flush + fsync) and opens a new
// one starting at the current next LSN.
func (s *Store) rotateLocked() error {
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("store: rotate: %w", err)
	}
	s.met.observeRotation()
	return s.createSegmentLocked(s.next)
}

// Sync flushes buffered appends to the OS and — unless the policy is
// SyncNone — forces them to stable storage. It is the group-commit
// point of the SyncBatch policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if err := s.w.Flush(); err != nil {
		err = fmt.Errorf("store: sync: %w", err)
		s.recordErr(err)
		return err
	}
	if s.opts.SyncPolicy == SyncNone {
		return nil
	}
	var start time.Time
	if s.met != nil {
		start = time.Now()
	}
	if err := s.f.Sync(); err != nil {
		err = fmt.Errorf("store: sync: %w", err)
		s.recordErr(err)
		return err
	}
	s.met.observeFsync(start)
	return nil
}

// Close seals the log: buffered appends are flushed and synced, the
// active segment is closed, and further operations return ErrClosed.
func (s *Store) Close() error {
	s.stopTicker()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.syncLocked()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.lock.Close() // releases the flock
	return err
}

// Kill simulates dying by kill -9: the file descriptor is closed
// WITHOUT flushing the user-space append buffer, so records since the
// last Sync that were still buffered in the process are lost — exactly
// what a real SIGKILL loses. For crash testing.
func (s *Store) Kill() {
	s.stopTicker()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.f.Close()
	// A real kill -9 releases the flock via process death; here the
	// process lives on, so drop it explicitly or recovery would block.
	s.lock.Close()
}

func (s *Store) stopTicker() {
	if s.tick == nil {
		return
	}
	s.mu.Lock()
	stop := s.tickStop
	s.tickStop = nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	s.tick.Stop()
	close(stop)
	s.tickWG.Wait()
}

// Snapshots returns the retained snapshot LSNs in ascending order.
func (s *Store) Snapshots() []LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]LSN(nil), s.snaps...)
}

// OpenSnapshot opens the snapshot stamped with lsn for reading.
func (s *Store) OpenSnapshot(lsn LSN) (io.ReadCloser, error) {
	return os.Open(filepath.Join(s.dir, snapName(lsn)))
}

// WriteSnapshot atomically writes a snapshot covering records [0, lsn):
// the write callback streams the image into a temp file, which is
// fsynced and renamed into place. Afterwards the two newest snapshots
// are retained (older ones deleted) and every sealed segment whose
// records all fall below the oldest retained snapshot is compacted
// away — the log-truncation half of snapshot recovery.
//
// Appends proceed concurrently; only other snapshot writes serialize.
func (s *Store) WriteSnapshot(lsn LSN, write func(io.Writer) error) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.met != nil {
		defer s.met.observeSnapshot(time.Now())
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if lsn > s.next {
		next := s.next
		s.mu.Unlock()
		return fmt.Errorf("store: snapshot LSN %d beyond log end %d", lsn, next)
	}
	s.mu.Unlock()

	final := filepath.Join(s.dir, snapName(lsn))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Record the snapshot (idempotent if re-stamping the same LSN).
	found := false
	for _, have := range s.snaps {
		if have == lsn {
			found = true
			break
		}
	}
	if !found {
		s.snaps = append(s.snaps, lsn)
		for i := len(s.snaps) - 1; i > 0 && s.snaps[i] < s.snaps[i-1]; i-- {
			s.snaps[i], s.snaps[i-1] = s.snaps[i-1], s.snaps[i]
		}
	}
	// Retain the two newest snapshots so recovery can fall back one
	// generation; delete the rest.
	const retain = 2
	for len(s.snaps) > retain {
		old := s.snaps[0]
		if err := os.Remove(filepath.Join(s.dir, snapName(old))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("store: compact snapshot: %w", err)
		}
		s.snaps = s.snaps[1:]
	}
	// Compact: drop sealed segments fully covered by the oldest retained
	// snapshot. A segment's range ends where the next segment starts, so
	// the active (last) segment is never a candidate.
	floor := s.snaps[0]
	for len(s.segs) >= 2 && s.segs[1].start <= floor {
		if err := os.Remove(s.segs[0].path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("store: compact segment: %w", err)
		}
		s.segs = s.segs[1:]
	}
	return nil
}

// ReplayStats summarizes a Replay pass.
type ReplayStats struct {
	// Records is how many records were delivered to the callback.
	Records int64
	// Torn reports that the scan ended at a torn final record (possible
	// only when replaying a directory not yet cleaned by Open).
	Torn bool
}

// Replay streams every record with LSN ≥ from, in order, to fn. It
// verifies segment-chain continuity and checksums along the way:
// corruption anywhere except a torn final record is an error, as is a
// gap left by over-eager external deletion. fn errors abort the replay.
func (s *Store) Replay(from LSN, fn func(LSN, Record) error) (stats ReplayStats, err error) {
	if s.met != nil {
		start := time.Now()
		defer func() { s.met.observeReplay(start, stats.Records) }()
	}
	s.mu.Lock()
	if err := s.w.Flush(); err != nil { // make buffered appends visible to the scan
		s.mu.Unlock()
		return ReplayStats{}, fmt.Errorf("store: replay: %w", err)
	}
	segs := append([]segment(nil), s.segs...)
	s.mu.Unlock()

	if len(segs) == 0 {
		return stats, nil
	}
	if from < segs[0].start {
		return stats, fmt.Errorf("store: replay from LSN %d but log starts at %d (compacted past it)", from, segs[0].start)
	}
	for i, sg := range segs {
		last := i == len(segs)-1
		if !last && segs[i+1].start <= from {
			continue // fully below the replay horizon
		}
		count, _, torn, err := scanSegment(sg.path, func(lsn LSN, rec Record) error {
			if lsn < from {
				return nil
			}
			if err := fn(lsn, rec); err != nil {
				return err
			}
			stats.Records++
			return nil
		})
		if err != nil {
			return stats, err
		}
		if torn {
			if !last {
				return stats, fmt.Errorf("store: segment %s is corrupt mid-log (torn frame before the final segment)", sg)
			}
			stats.Torn = true
		}
		if !last {
			if got, want := sg.start+LSN(count), segs[i+1].start; got != want {
				return stats, fmt.Errorf("store: segment %s ends at LSN %d but %s starts at %d", sg, got, segs[i+1], want)
			}
		}
	}
	return stats, nil
}

// lockDir takes the directory's advisory flock (LOCK file). The lock
// lives as long as the returned file descriptor — closed explicitly on
// Close/Kill, or by the kernel when the process dies.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: data dir %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

// syncDir fsyncs a directory so renames and creates within it survive a
// machine crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}
