package store

import (
	"time"

	"repro/internal/obs"
)

// storeMetrics holds the store's observability handles. A nil
// *storeMetrics (no registry configured) makes every observation a
// no-op, so the WAL hot path carries no obs dependency unless asked.
type storeMetrics struct {
	appendSec     *obs.Histogram // encode+write time, excluding fsync
	fsyncSec      *obs.Histogram
	rotations     *obs.Counter
	snapshotSec   *obs.Histogram
	replaySec     *obs.Gauge // last recovery replay duration
	replayRecords *obs.Gauge // records replayed by the last recovery
}

// newStoreMetrics registers the store's metric families on reg; nil reg
// returns nil (metrics disabled).
func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	if reg == nil {
		return nil
	}
	lb := obs.LatencyBuckets()
	return &storeMetrics{
		appendSec: reg.Histogram("revmaxd_wal_append_seconds",
			"Time to encode and buffer one WAL record, excluding fsync.", lb),
		fsyncSec: reg.Histogram("revmaxd_wal_fsync_seconds",
			"Time per WAL fsync (flush to stable storage).", lb),
		rotations: reg.Counter("revmaxd_wal_segment_rotations_total",
			"WAL segment rotations since process start."),
		snapshotSec: reg.Histogram("revmaxd_snapshot_write_seconds",
			"Time to write, fsync, and install one snapshot.", lb),
		replaySec: reg.Gauge("revmaxd_recovery_replay_seconds",
			"Duration of the last WAL replay pass (crash recovery or reload)."),
		replayRecords: reg.Gauge("revmaxd_recovery_replayed_records",
			"Records replayed by the last WAL replay pass."),
	}
}

func (m *storeMetrics) observeAppend(start time.Time) {
	if m != nil {
		m.appendSec.Observe(time.Since(start).Seconds())
	}
}

func (m *storeMetrics) observeFsync(start time.Time) {
	if m != nil {
		m.fsyncSec.Observe(time.Since(start).Seconds())
	}
}

func (m *storeMetrics) observeRotation() {
	if m != nil {
		m.rotations.Inc()
	}
}

func (m *storeMetrics) observeSnapshot(start time.Time) {
	if m != nil {
		m.snapshotSec.Observe(time.Since(start).Seconds())
	}
}

func (m *storeMetrics) observeReplay(start time.Time, records int64) {
	if m != nil {
		m.replaySec.Set(time.Since(start).Seconds())
		m.replayRecords.Set(float64(records))
	}
}
