package adoption_test

import (
	"testing"
	"testing/quick"

	"repro/internal/adoption"
	"repro/internal/kde"
)

func estimator() adoption.Estimator {
	return adoption.Estimator{
		Valuation: kde.GaussianProxy{Mu: 100, Sigma: 20},
		RMax:      5,
	}
}

func TestProbabilityAntiMonotoneInPrice(t *testing.T) {
	e := estimator()
	prev := 2.0
	for p := 0.0; p <= 250; p += 5 {
		q := e.Probability(4, p)
		if q > prev+1e-12 {
			t.Fatalf("q increased with price at %v", p)
		}
		prev = q
	}
}

func TestProbabilityMonotoneInRating(t *testing.T) {
	e := estimator()
	prev := -1.0
	for r := 0.0; r <= 5; r += 0.25 {
		q := e.Probability(r, 100)
		if q < prev-1e-12 {
			t.Fatalf("q decreased with rating at %v", r)
		}
		prev = q
	}
}

func TestProbabilityBounds(t *testing.T) {
	e := estimator()
	prop := func(rRaw, pRaw uint16) bool {
		rating := float64(rRaw%60) / 10   // 0..5.9 (may exceed RMax)
		price := float64(pRaw % 500)      // 0..499
		q := e.Probability(rating, price) // must stay in [0,1]
		return q >= 0 && q <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestProbabilityKnownValue(t *testing.T) {
	e := estimator()
	// At price = μ, survival = 0.5; rating 5/5 ⇒ q = 0.5.
	if got := e.Probability(5, 100); got != 0.5 {
		t.Fatalf("q = %v, want 0.5", got)
	}
	// Rating 2.5/5 halves it.
	if got := e.Probability(2.5, 100); got != 0.25 {
		t.Fatalf("q = %v, want 0.25", got)
	}
}

func TestProbabilityZeroCases(t *testing.T) {
	e := estimator()
	if e.Probability(0, 50) != 0 {
		t.Fatal("zero rating should yield q = 0")
	}
	if e.Probability(-1, 50) != 0 {
		t.Fatal("negative rating should yield q = 0")
	}
	bad := adoption.Estimator{Valuation: kde.GaussianProxy{Mu: 1, Sigma: 1}, RMax: 0}
	if bad.Probability(5, 0) != 0 {
		t.Fatal("RMax = 0 should yield q = 0")
	}
}

func TestProbabilityRatingClamp(t *testing.T) {
	e := estimator()
	// Ratings above RMax are treated as RMax, never pushing q above the
	// survival probability.
	if got, lim := e.Probability(50, 100), 0.5; got != lim {
		t.Fatalf("q = %v, want clamped %v", got, lim)
	}
}

func TestFromSamples(t *testing.T) {
	est, err := adoption.FromSamples([]float64{90, 100, 110, 95, 105}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Cheap price beats expensive price.
	if est.Probability(4, 50) <= est.Probability(4, 150) {
		t.Fatal("learned estimator not price-sensitive")
	}
	if est.RMax != 5 {
		t.Fatalf("RMax = %v", est.RMax)
	}
}

func TestFromSamplesEmpty(t *testing.T) {
	if _, err := adoption.FromSamples(nil, 5); err == nil {
		t.Fatal("empty sample accepted")
	}
}
