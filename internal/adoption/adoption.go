// Package adoption estimates primitive adoption probabilities from
// predicted ratings, prices, and buyer-valuation distributions, following
// §6 of Lu et al. (VLDB 2014):
//
//	q(u,i,t) = Pr[val_ui ≥ p(i,t)] · r̂(u,i) / r_max
//
// under the independent-private-value assumption: valuations are drawn
// from a per-item distribution independent of other buyers. The valuation
// distributions are Gaussian (either learned via KDE + moment-matched
// proxy, or set directly for synthetic data).
package adoption

import (
	"repro/internal/dist"
	"repro/internal/kde"
)

// Estimator turns (rating, price) pairs into adoption probabilities for
// a fixed item whose valuation distribution is known.
type Estimator struct {
	// Valuation is the item's buyer-valuation distribution.
	Valuation kde.GaussianProxy
	// RMax is the rating ceiling of the system (5 for Amazon/Epinions).
	RMax float64
}

// Probability returns q = Pr[val ≥ price] · rating/RMax, clamped to
// [0, 1]. Ratings below zero are treated as zero interest.
func (e Estimator) Probability(rating, price float64) float64 {
	if e.RMax <= 0 || rating <= 0 {
		return 0
	}
	r := rating / e.RMax
	if r > 1 {
		r = 1
	}
	return dist.Clamp01(e.Valuation.Survival(price) * r)
}

// FromSamples learns the valuation distribution from reported price
// samples via KDE with a moment-matched Gaussian proxy (§6.1, Epinions
// pipeline).
func FromSamples(samples []float64, rmax float64) (Estimator, error) {
	k, err := kde.New(samples)
	if err != nil {
		return Estimator{}, err
	}
	return Estimator{Valuation: k.Proxy(), RMax: rmax}, nil
}
