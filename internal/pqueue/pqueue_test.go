package pqueue_test

import (
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/pqueue"
)

func entry(u, i, t int, key float64) *pqueue.Entry {
	return &pqueue.Entry{
		Triple: model.Triple{U: model.UserID(u), I: model.ItemID(i), T: model.TimeStep(t)},
		Key:    key,
	}
}

func TestMaxHeapOrdering(t *testing.T) {
	var h pqueue.Max
	keys := []float64{3, 1, 4, 1.5, 9, 2.6, 5}
	for i, k := range keys {
		h.Push(entry(0, i, 1, k))
	}
	sorted := append([]float64(nil), keys...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	for _, want := range sorted {
		e := h.Pop()
		if e == nil || e.Key != want {
			t.Fatalf("Pop order wrong: got %v, want %v", e, want)
		}
	}
	if !h.Empty() || h.Pop() != nil {
		t.Fatal("heap not empty at end")
	}
}

func TestMaxHeapPeekDoesNotRemove(t *testing.T) {
	var h pqueue.Max
	h.Push(entry(0, 0, 1, 5))
	if h.Peek() == nil || h.Len() != 1 {
		t.Fatal("Peek removed the entry")
	}
}

func TestMaxHeapFixAfterKeyChange(t *testing.T) {
	var h pqueue.Max
	a := entry(0, 0, 1, 10)
	b := entry(0, 1, 1, 5)
	c := entry(0, 2, 1, 1)
	h.Push(a)
	h.Push(b)
	h.Push(c)
	// Decrease the max below everything; Fix must re-order.
	a.Key = 0
	h.Fix(a)
	if got := h.Pop(); got != b {
		t.Fatalf("after decrease, max = %v, want b", got.Triple)
	}
	// Increase the min above everything.
	c.Key = 100
	h.Fix(c)
	if got := h.Pop(); got != c {
		t.Fatalf("after increase, max = %v, want c", got.Triple)
	}
}

func TestMaxHeapRandomizedAgainstSort(t *testing.T) {
	rng := dist.NewRNG(9)
	for trial := 0; trial < 30; trial++ {
		var h pqueue.Max
		n := 1 + rng.Intn(200)
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = rng.Float64() * 1000
			h.Push(entry(0, i, 1, keys[i]))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(keys)))
		for _, want := range keys {
			if got := h.Pop().Key; got != want {
				t.Fatalf("trial %d: pop %v want %v", trial, got, want)
			}
		}
	}
}

func TestTwoLevelBasicOrdering(t *testing.T) {
	tl := pqueue.NewTwoLevel()
	// Pairs (u, i) with several times each.
	tl.Add(entry(0, 0, 1, 5))
	tl.Add(entry(0, 0, 2, 9))
	tl.Add(entry(0, 1, 1, 7))
	tl.Add(entry(1, 0, 1, 3))
	tl.Build()
	want := []float64{9, 7, 5, 3}
	for _, w := range want {
		e := tl.DeleteMax()
		if e == nil || e.Key != w {
			t.Fatalf("DeleteMax = %v, want key %v", e, w)
		}
	}
	if !tl.Empty() {
		t.Fatal("two-level heap not drained")
	}
}

func TestTwoLevelRandomizedAgainstSort(t *testing.T) {
	rng := dist.NewRNG(10)
	for trial := 0; trial < 20; trial++ {
		tl := pqueue.NewTwoLevel()
		var keys []float64
		users := 1 + rng.Intn(5)
		items := 1 + rng.Intn(5)
		for u := 0; u < users; u++ {
			for i := 0; i < items; i++ {
				for tt := 1; tt <= 1+rng.Intn(7); tt++ {
					k := rng.Float64() * 100
					keys = append(keys, k)
					tl.Add(entry(u, i, tt, k))
				}
			}
		}
		tl.Build()
		if tl.Len() != len(keys) {
			t.Fatalf("Len = %d, want %d", tl.Len(), len(keys))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(keys)))
		for _, w := range keys {
			if got := tl.DeleteMax().Key; got != w {
				t.Fatalf("trial %d: got %v want %v", trial, got, w)
			}
		}
	}
}

func TestTwoLevelDeletePair(t *testing.T) {
	tl := pqueue.NewTwoLevel()
	tl.Add(entry(0, 0, 1, 100))
	tl.Add(entry(0, 0, 2, 90))
	tl.Add(entry(0, 1, 1, 50))
	tl.Build()
	tl.DeletePair(0, 0)
	if tl.Len() != 1 {
		t.Fatalf("Len after DeletePair = %d, want 1", tl.Len())
	}
	if got := tl.DeleteMax().Key; got != 50 {
		t.Fatalf("remaining max = %v, want 50", got)
	}
	// Deleting a missing pair is a no-op.
	tl.DeletePair(9, 9)
}

func TestTwoLevelDeleteEntry(t *testing.T) {
	tl := pqueue.NewTwoLevel()
	a := entry(0, 0, 1, 100)
	b := entry(0, 0, 2, 90)
	c := entry(0, 1, 1, 95)
	tl.Add(a)
	tl.Add(b)
	tl.Add(c)
	tl.Build()
	tl.DeleteEntry(a)
	if tl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tl.Len())
	}
	if got := tl.PeekMax(); got != c {
		t.Fatalf("PeekMax = %v, want c", got.Triple)
	}
	// Double-delete is a no-op.
	tl.DeleteEntry(a)
	if tl.Len() != 2 {
		t.Fatal("double DeleteEntry changed Len")
	}
}

func TestTwoLevelFixPairAfterKeyUpdates(t *testing.T) {
	tl := pqueue.NewTwoLevel()
	a := entry(0, 0, 1, 100)
	b := entry(0, 0, 2, 90)
	c := entry(0, 1, 1, 95)
	tl.Add(a)
	tl.Add(b)
	tl.Add(c)
	tl.Build()
	// Stale-root scenario: (0,0)'s keys collapse; after FixPair, (0,1)
	// must surface.
	for _, e := range tl.PairEntries(0, 0) {
		e.Key = 1
	}
	tl.FixPair(0, 0)
	if got := tl.PeekMax(); got != c {
		t.Fatalf("PeekMax after FixPair = %v, want c", got.Triple)
	}
	order := []float64{95, 1, 1}
	for _, w := range order {
		if got := tl.DeleteMax().Key; got != w {
			t.Fatalf("got %v want %v", got, w)
		}
	}
}

func TestTwoLevelPairEntriesUnknownPair(t *testing.T) {
	tl := pqueue.NewTwoLevel()
	if tl.PairEntries(1, 1) != nil {
		t.Fatal("unknown pair should return nil")
	}
	tl.FixPair(1, 1) // no-op, no panic
}

func TestTwoLevelEmptyPeek(t *testing.T) {
	tl := pqueue.NewTwoLevel()
	tl.Build()
	if tl.PeekMax() != nil || tl.DeleteMax() != nil {
		t.Fatal("empty heap returned an entry")
	}
}

func TestTwoLevelInterleavedOperations(t *testing.T) {
	// Stress: random interleaving of Add (pre-Build only), DeleteMax,
	// FixPair with random key rewrites; compare against a model "bag".
	rng := dist.NewRNG(11)
	for trial := 0; trial < 10; trial++ {
		tl := pqueue.NewTwoLevel()
		type slot struct{ e *pqueue.Entry }
		var live []*pqueue.Entry
		for u := 0; u < 3; u++ {
			for i := 0; i < 3; i++ {
				for tt := 1; tt <= 4; tt++ {
					e := entry(u, i, tt, rng.Float64()*100)
					tl.Add(e)
					live = append(live, e)
				}
			}
		}
		tl.Build()
		_ = slot{}
		for step := 0; step < 60 && !tl.Empty(); step++ {
			switch rng.Intn(3) {
			case 0: // DeleteMax and verify it is the true maximum
				var maxKey float64 = -1
				for _, e := range live {
					if e.Key > maxKey {
						maxKey = e.Key
					}
				}
				got := tl.DeleteMax()
				if got.Key != maxKey {
					t.Fatalf("trial %d step %d: DeleteMax %v, want %v", trial, step, got.Key, maxKey)
				}
				for idx, e := range live {
					if e == got {
						live = append(live[:idx], live[idx+1:]...)
						break
					}
				}
			case 1: // rewrite a random pair's keys
				u := model.UserID(rng.Intn(3))
				i := model.ItemID(rng.Intn(3))
				for _, e := range tl.PairEntries(u, i) {
					e.Key = rng.Float64() * 100
				}
				tl.FixPair(u, i)
			case 2: // delete a random live entry
				if len(live) == 0 {
					continue
				}
				idx := rng.Intn(len(live))
				tl.DeleteEntry(live[idx])
				live = append(live[:idx], live[idx+1:]...)
			}
			if tl.Len() != len(live) {
				t.Fatalf("trial %d: Len %d != model %d", trial, tl.Len(), len(live))
			}
		}
	}
}

func denseEntry(u, i, tt int, pair int32, id model.CandID, key float64) *pqueue.Entry {
	e := entry(u, i, tt, key)
	e.Pair = pair
	e.ID = id
	return e
}

// Regression: a post-Build Add with a new global maximum must re-sift
// the upper heap. Before the fix, Add only refreshed the lower's cached
// root, so PeekMax/DeleteMax returned a non-maximal entry.
func TestTwoLevelAddAfterBuildNewMaximumMapMode(t *testing.T) {
	tl := pqueue.NewTwoLevel()
	tl.Add(entry(0, 0, 1, 10))
	tl.Add(entry(1, 0, 1, 50)) // upper root after Build
	tl.Add(entry(2, 0, 1, 30))
	tl.Build()
	// New maximum into an existing non-root pair.
	tl.Add(entry(0, 0, 2, 99))
	if got := tl.PeekMax(); got == nil || got.Key != 99 {
		t.Fatalf("PeekMax after post-Build Add = %v, want key 99", got)
	}
	// New maximum as a brand-new pair (appended at the upper tail).
	tl.Add(entry(3, 0, 1, 200))
	want := []float64{200, 99, 50, 30, 10}
	for _, w := range want {
		e := tl.DeleteMax()
		if e == nil || e.Key != w {
			t.Fatalf("DeleteMax = %v, want key %v", e, w)
		}
	}
}

func TestTwoLevelAddAfterBuildNewMaximumDenseMode(t *testing.T) {
	tl := pqueue.NewTwoLevelDense(4, nil)
	tl.Add(denseEntry(0, 0, 1, 0, 0, 10))
	tl.Add(denseEntry(1, 0, 1, 1, 1, 50))
	tl.Add(denseEntry(2, 0, 1, 2, 2, 30))
	tl.Build()
	tl.Add(denseEntry(0, 0, 2, 0, 3, 99))
	if got := tl.PeekMax(); got == nil || got.Key != 99 {
		t.Fatalf("PeekMax after post-Build Add = %v, want key 99", got)
	}
	tl.Add(denseEntry(3, 0, 1, 3, 4, 200))
	want := []float64{200, 99, 50, 30, 10}
	for _, w := range want {
		e := tl.DeleteMax()
		if e == nil || e.Key != w {
			t.Fatalf("DeleteMax = %v, want key %v", e, w)
		}
	}
}

// Regression: dense-mode Add to a pair dropped wholesale by DeletePairOf
// must panic instead of silently resurrecting the dropped entries.
func TestTwoLevelDenseReAddDroppedPairPanics(t *testing.T) {
	tl := pqueue.NewTwoLevelDense(2, nil)
	a := denseEntry(0, 0, 1, 0, 0, 100)
	b := denseEntry(0, 0, 2, 0, 1, 90)
	c := denseEntry(0, 1, 1, 1, 2, 50)
	tl.Add(a)
	tl.Add(b)
	tl.Add(c)
	tl.Build()
	tl.DeletePairOf(a)
	defer func() {
		if recover() == nil {
			t.Fatal("Add to a dropped dense pair did not panic")
		}
	}()
	tl.Add(denseEntry(0, 0, 3, 0, 3, 1))
}

// Re-adding to a dense pair whose lower heap was fully drained entry by
// entry (not dropped wholesale) stays supported: no stale entries exist.
func TestTwoLevelDenseReAddDrainedPairOK(t *testing.T) {
	tl := pqueue.NewTwoLevelDense(2, nil)
	a := denseEntry(0, 0, 1, 0, 0, 100)
	c := denseEntry(0, 1, 1, 1, 1, 50)
	tl.Add(a)
	tl.Add(c)
	tl.Build()
	tl.DeleteEntry(a) // drains pair 0, removing it from the upper heap
	tl.Add(denseEntry(0, 0, 2, 0, 2, 75))
	want := []float64{75, 50}
	for _, w := range want {
		e := tl.DeleteMax()
		if e == nil || e.Key != w {
			t.Fatalf("DeleteMax = %v, want key %v", e, w)
		}
	}
}

// Double deletes after DeletePairOf must hit the lowerOf nil guards and
// stay no-ops in both addressing modes.
func TestTwoLevelDoubleDeleteGuards(t *testing.T) {
	build := func(denseMode bool) (*pqueue.TwoLevel, *pqueue.Entry, *pqueue.Entry) {
		var tl *pqueue.TwoLevel
		if denseMode {
			tl = pqueue.NewTwoLevelDense(2, nil)
		} else {
			tl = pqueue.NewTwoLevel()
		}
		a := denseEntry(0, 0, 1, 0, 0, 100)
		b := denseEntry(0, 0, 2, 0, 1, 90)
		c := denseEntry(0, 1, 1, 1, 2, 50)
		tl.Add(a)
		tl.Add(b)
		tl.Add(c)
		tl.Build()
		return tl, a, b
	}
	for _, denseMode := range []bool{false, true} {
		tl, a, b := build(denseMode)
		tl.DeletePairOf(a)
		if tl.Len() != 1 {
			t.Fatalf("dense=%v: Len after DeletePairOf = %d, want 1", denseMode, tl.Len())
		}
		tl.DeletePairOf(a) // repeat: nil lower, no-op
		tl.DeleteEntry(a)  // entry of a dropped pair: no-op
		tl.DeleteEntry(b)
		if tl.Len() != 1 {
			t.Fatalf("dense=%v: deletes after DeletePairOf changed Len to %d", denseMode, tl.Len())
		}
		if got := tl.DeleteMax(); got == nil || got.Key != 50 {
			t.Fatalf("dense=%v: surviving max = %v, want 50", denseMode, got)
		}
		if !tl.Empty() {
			t.Fatalf("dense=%v: heap not empty at end", denseMode)
		}
	}
}

// The deterministic total order: exact key ties break toward the
// smaller candidate ID, in both the flat Max heap and the two-level
// heap. This is what pins parallel G-Greedy to the sequential output.
func TestDeterministicTieBreakByID(t *testing.T) {
	var h pqueue.Max
	ids := []model.CandID{7, 3, 9, 1, 5}
	for _, id := range ids {
		e := entry(0, int(id), 1, 42)
		e.ID = id
		h.Push(e)
	}
	for _, want := range []model.CandID{1, 3, 5, 7, 9} {
		if got := h.Pop(); got.ID != want {
			t.Fatalf("Max tie-break pop = %d, want %d", got.ID, want)
		}
	}

	tl := pqueue.NewTwoLevelDense(3, nil)
	tl.Add(denseEntry(0, 0, 1, 0, 4, 42))
	tl.Add(denseEntry(0, 0, 2, 0, 2, 42))
	tl.Add(denseEntry(1, 0, 1, 1, 0, 42))
	tl.Add(denseEntry(2, 0, 1, 2, 3, 42))
	tl.Build()
	for _, want := range []model.CandID{0, 2, 3, 4} {
		e := tl.DeleteMax()
		if e == nil || e.ID != want {
			t.Fatalf("TwoLevel tie-break DeleteMax = %v, want ID %d", e, want)
		}
	}
}
