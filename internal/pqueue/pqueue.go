// Package pqueue provides the priority-queue machinery behind the RevMax
// greedy algorithms: a single-level max-heap keyed by float64 (used by
// SL-Greedy / RL-Greedy, Algorithm 2) and the two-level heap structure of
// Algorithm 1 (G-Greedy), where a lower max-heap per (user, item) pair
// holds that pair's time steps and an upper max-heap ranks the lower
// roots.
//
// The two-level split is the paper's optimization: each lower heap has at
// most T elements (T = 7 in the experiments), so Decrease-Key traffic
// stays inside tiny heaps, while the upper heap has at most |U|·|I|
// elements — a factor T smaller than one giant heap.
package pqueue

import (
	"repro/internal/model"
)

// Entry is one candidate triple tracked by a heap, with its cached
// (possibly stale) marginal revenue and the lazy-forward flag of
// Algorithm 1 (line 9).
type Entry struct {
	Triple model.Triple
	ID     model.CandID // dense candidate ID (hot-path addressing)
	Pair   int32        // dense (user, item) pair ID; required in dense two-level heaps
	Q      float64      // primitive adoption probability, cached
	Key    float64      // cached marginal revenue (may be stale)
	Flag   int          // lazy-forward freshness stamp

	pos int // index within its heap
}

// Beats reports whether e precedes o in the deterministic total order
// all heaps in this package share: larger Key first, smaller candidate
// ID on exact float ties. The tie-break makes every greedy selection a
// unique global argmax, which is what lets the parallel G-Greedy solver
// reproduce the sequential selection sequence byte-for-byte regardless
// of worker count.
func (e *Entry) Beats(o *Entry) bool {
	if e.Key != o.Key {
		return e.Key > o.Key
	}
	return e.ID < o.ID
}

// Max is a binary max-heap of entries ordered by (Key desc, ID asc).
// The zero value is an empty, ready-to-use heap.
type Max struct {
	es []*Entry
}

// Len reports the number of entries.
func (h *Max) Len() int { return len(h.es) }

// Empty reports whether the heap has no entries.
func (h *Max) Empty() bool { return len(h.es) == 0 }

// Push inserts e.
func (h *Max) Push(e *Entry) {
	e.pos = len(h.es)
	h.es = append(h.es, e)
	h.siftUp(e.pos)
}

// Peek returns the maximum entry without removing it, or nil when empty.
func (h *Max) Peek() *Entry {
	if len(h.es) == 0 {
		return nil
	}
	return h.es[0]
}

// Pop removes and returns the maximum entry, or nil when empty.
func (h *Max) Pop() *Entry {
	if len(h.es) == 0 {
		return nil
	}
	top := h.es[0]
	last := len(h.es) - 1
	h.swap(0, last)
	h.es = h.es[:last]
	if last > 0 {
		h.siftDown(0)
	}
	top.pos = -1
	return top
}

// Fix restores heap order after e.Key changed in place.
func (h *Max) Fix(e *Entry) {
	if e.pos < 0 || e.pos >= len(h.es) || h.es[e.pos] != e {
		return
	}
	if !h.siftUp(e.pos) {
		h.siftDown(e.pos)
	}
}

// Entries exposes the raw entry slice (heap order, not sorted). Callers
// must not mutate the slice itself; mutating Key requires a Fix.
func (h *Max) Entries() []*Entry { return h.es }

func (h *Max) swap(a, b int) {
	h.es[a], h.es[b] = h.es[b], h.es[a]
	h.es[a].pos = a
	h.es[b].pos = b
}

func (h *Max) siftUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.es[i].Beats(h.es[parent]) {
			break
		}
		h.swap(parent, i)
		i = parent
		moved = true
	}
	return moved
}

func (h *Max) siftDown(i int) {
	n := len(h.es)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.es[l].Beats(h.es[best]) {
			best = l
		}
		if r < n && h.es[r].Beats(h.es[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// PairKey identifies one (user, item) lower heap.
type PairKey struct {
	U model.UserID
	I model.ItemID
}

// lower is one per-(user,item) heap plus its position in the upper heap
// and a cached copy of its root (key and candidate ID): upper-heap sift
// comparisons read the cache instead of chasing two pointers into the
// lower heap's root entry. Every lower-heap mutation must refreshRoot
// before the upper heap is touched.
type lower struct {
	key    PairKey
	heap   Max
	root   float64
	rootID model.CandID
	pos    int // index within the upper heap
}

func (lo *lower) refreshRoot() {
	if lo.heap.Empty() {
		lo.root = negInf
		lo.rootID = 1<<31 - 1
		return
	}
	top := lo.heap.Peek()
	lo.root = top.Key
	lo.rootID = top.ID
}

// rootBeats orders lowers by their cached roots under the package's
// deterministic total order (Key desc, ID asc).
func (lo *lower) rootBeats(o *lower) bool {
	if lo.root != o.root {
		return lo.root > o.root
	}
	return lo.rootID < o.rootID
}

const negInf = -1e308

// TwoLevel is the two-level heap of Algorithm 1. Populate with Add, then
// call Build once; afterwards PeekMax / DeleteMax / FixPair / DeletePair
// maintain the invariant that the upper root's lower root is the global
// maximum.
type TwoLevel struct {
	lowers map[PairKey]*lower
	// dense, when non-nil, replaces the pair map: lower heaps live in one
	// bulk-allocated array indexed by Entry.Pair (the instance's dense
	// (user, item) pair IDs), so every pair lookup is an array read and
	// the per-pair allocations disappear. Built by NewTwoLevelDense;
	// entries added to a dense heap must carry their Pair.
	dense []lower
	upper []*lower
	count int
	built bool
}

// NewTwoLevel returns an empty two-level heap keyed by (user, item)
// pairs through a map. Prefer NewTwoLevelDense when a dense pair
// numbering is available.
func NewTwoLevel() *TwoLevel {
	return &TwoLevel{lowers: make(map[PairKey]*lower)}
}

// NewTwoLevelDense returns an empty two-level heap whose lower heaps are
// addressed by the dense pair IDs [0, numPairs) carried in Entry.Pair.
// caps, when non-nil, gives each pair's maximum entry count (len =
// numPairs): lower-heap storage is then carved out of one bulk backing
// array and Pushes never allocate. The heap is populate-then-consume:
// Add all entries, Build, then select; re-adding to a pair dropped by
// DeletePairOf is not supported in dense mode.
func NewTwoLevelDense(numPairs int, caps []int32) *TwoLevel {
	t := &TwoLevel{dense: make([]lower, numPairs)}
	if caps != nil {
		total := 0
		for _, c := range caps {
			total += int(c)
		}
		backing := make([]*Entry, total)
		off := 0
		for i := range t.dense {
			end := off + int(caps[i])
			t.dense[i].heap.es = backing[off:off:end]
			off = end
		}
	}
	for i := range t.dense {
		t.dense[i].pos = -1
	}
	return t
}

// Add inserts an entry into its (user, item) lower heap. Add may be used
// both before and after Build; before Build the upper heap is not yet
// ordered, afterwards Add restores the upper-heap invariant itself.
func (t *TwoLevel) Add(e *Entry) {
	var lo *lower
	if t.dense != nil {
		lo = &t.dense[e.Pair]
		if lo.pos < 0 {
			if lo.heap.Len() > 0 {
				// The pair was dropped wholesale by DeletePairOf with its
				// entries still in place; reactivating it would resurrect
				// those stale entries alongside e. This was documented as
				// unsupported but used to fail silently.
				panic("pqueue: Add to a dense pair dropped by DeletePairOf")
			}
			lo.key = PairKey{e.Triple.U, e.Triple.I}
			lo.pos = len(t.upper)
			t.upper = append(t.upper, lo)
		}
	} else {
		key := PairKey{e.Triple.U, e.Triple.I}
		lo = t.lowers[key]
		if lo == nil {
			lo = &lower{key: key, pos: len(t.upper)}
			t.lowers[key] = lo
			t.upper = append(t.upper, lo)
		}
	}
	lo.heap.Push(e)
	lo.refreshRoot()
	t.count++
	if t.built {
		// Post-Build insert: the lower's root may have grown (or the lower
		// may be brand new at the tail of the upper array), so the upper
		// heap must be re-sifted or PeekMax/DeleteMax can return a
		// non-maximal entry.
		t.fixUpper(lo.pos)
	}
}

// lowerOf resolves an entry's lower heap in either addressing mode; nil
// when the pair has been deleted (or never added).
func (t *TwoLevel) lowerOf(e *Entry) *lower {
	if t.dense != nil {
		lo := &t.dense[e.Pair]
		if lo.pos < 0 {
			return nil
		}
		return lo
	}
	return t.lowers[PairKey{e.Triple.U, e.Triple.I}]
}

// Build heapifies the upper heap over all lower roots (Algorithm 1,
// line 10). Entries Added afterwards keep the invariant incrementally.
func (t *TwoLevel) Build() {
	for i := len(t.upper)/2 - 1; i >= 0; i-- {
		t.siftDown(i)
	}
	t.built = true
}

// Len reports the total number of entries across all lower heaps.
func (t *TwoLevel) Len() int { return t.count }

// Empty reports whether no entries remain.
func (t *TwoLevel) Empty() bool { return t.count == 0 }

// PeekMax returns the globally maximum entry (the root of the upper
// root's lower heap), or nil when empty.
func (t *TwoLevel) PeekMax() *Entry {
	for len(t.upper) > 0 {
		top := t.upper[0]
		if top.heap.Empty() {
			t.removeUpper(0)
			continue
		}
		return top.heap.Peek()
	}
	return nil
}

// DeleteMax removes and returns the globally maximum entry.
func (t *TwoLevel) DeleteMax() *Entry {
	e := t.PeekMax()
	if e == nil {
		return nil
	}
	top := t.upper[0]
	top.heap.Pop()
	top.refreshRoot()
	t.count--
	if top.heap.Empty() {
		t.removeUpper(0)
	} else {
		t.siftDown(0)
	}
	return e
}

// PairEntries returns the entries of the (u, i) lower heap so the caller
// can recompute their keys (Algorithm 1, lines 16–18). Returns nil when
// the pair has been deleted. After mutating keys call FixPair.
// Map-addressed; dense-mode callers use PairEntriesOf.
func (t *TwoLevel) PairEntries(u model.UserID, i model.ItemID) []*Entry {
	lo := t.lowers[PairKey{u, i}]
	if lo == nil {
		return nil
	}
	return lo.heap.Entries()
}

// PairEntriesOf is PairEntries addressed through an entry (array read in
// dense mode).
func (t *TwoLevel) PairEntriesOf(e *Entry) []*Entry {
	lo := t.lowerOf(e)
	if lo == nil {
		return nil
	}
	return lo.heap.Entries()
}

// FixPair re-heapifies the (u, i) lower heap after its keys changed and
// repositions it in the upper heap (the Decrease-Key of line 19).
// Map-addressed; dense-mode callers use FixPairOf.
func (t *TwoLevel) FixPair(u model.UserID, i model.ItemID) {
	t.fixLower(t.lowers[PairKey{u, i}])
}

// FixPairOf is FixPair addressed through an entry.
func (t *TwoLevel) FixPairOf(e *Entry) {
	t.fixLower(t.lowerOf(e))
}

func (t *TwoLevel) fixLower(lo *lower) {
	if lo == nil {
		return
	}
	es := lo.heap.Entries()
	for j := len(es)/2 - 1; j >= 0; j-- {
		lo.heap.siftDown(j)
	}
	lo.refreshRoot()
	t.fixUpper(lo.pos)
}

// DeleteEntry removes a single entry from its lower heap (used when a
// specific triple becomes permanently infeasible).
func (t *TwoLevel) DeleteEntry(e *Entry) {
	lo := t.lowerOf(e)
	if lo == nil || e.pos < 0 {
		return
	}
	h := &lo.heap
	last := len(h.es) - 1
	i := e.pos
	if i > last || h.es[i] != e {
		return
	}
	h.swap(i, last)
	h.es = h.es[:last]
	if i < last {
		if !h.siftUp(i) {
			h.siftDown(i)
		}
	}
	e.pos = -1
	t.count--
	lo.refreshRoot()
	if h.Empty() {
		t.removeUpper(lo.pos)
	} else {
		t.fixUpper(lo.pos)
	}
}

// Contains reports whether e currently sits in an active lower heap of
// t — i.e. PeekMax/DeleteMax could eventually surface it. Entries
// popped by DeleteMax, removed by DeleteEntry, or orphaned in a pair
// dropped by DeletePairOf are not contained. Persistent sessions use
// this to decide between an in-place UpdateKey and a RestorePair.
func (t *TwoLevel) Contains(e *Entry) bool {
	lo := t.lowerOf(e)
	if lo == nil {
		return false
	}
	return e.pos >= 0 && e.pos < lo.heap.Len() && lo.heap.es[e.pos] == e
}

// UpdateKey overwrites e's cached key and lazy-forward flag in place and
// restores both heap levels' invariants — the O(log T + log |pairs|)
// point update behind delta-driven incremental replanning (only dirty
// candidates pay it; clean entries are never touched). Reports false
// without mutating anything when e is not currently in an active lower
// heap (caller falls back to RestorePair).
func (t *TwoLevel) UpdateKey(e *Entry, key float64, flag int) bool {
	lo := t.lowerOf(e)
	if lo == nil || e.pos < 0 || e.pos >= lo.heap.Len() || lo.heap.es[e.pos] != e {
		return false
	}
	e.Key = key
	e.Flag = flag
	lo.heap.Fix(e)
	lo.refreshRoot()
	if t.built {
		t.fixUpper(lo.pos)
	}
	return true
}

// RestorePair rebuilds dense pair p's lower heap to hold exactly es
// (whose Keys the caller has already set), replacing whatever the pair
// held before — including nothing: unlike Add, RestorePair may
// reactivate a pair dropped wholesale by DeletePairOf, because it
// replaces every entry rather than resurrecting stale ones. An empty es
// deactivates the pair. Entry storage reuses the pair's carved backing
// window, so len(es) must not exceed the pair's construction-time cap.
// Dense mode only.
func (t *TwoLevel) RestorePair(p int32, es []*Entry) {
	if t.dense == nil {
		panic("pqueue: RestorePair requires a dense two-level heap")
	}
	lo := &t.dense[p]
	oldActive := 0
	if lo.pos >= 0 {
		oldActive = lo.heap.Len()
	}
	h := &lo.heap
	h.es = h.es[:0]
	for k, e := range es {
		e.pos = k
		h.es = append(h.es, e)
	}
	for j := len(h.es)/2 - 1; j >= 0; j-- {
		h.siftDown(j)
	}
	lo.refreshRoot()
	t.count += len(es) - oldActive
	switch {
	case len(es) == 0:
		if lo.pos >= 0 {
			t.removeUpper(lo.pos)
		}
	case lo.pos < 0:
		lo.key = PairKey{es[0].Triple.U, es[0].Triple.I}
		lo.pos = len(t.upper)
		t.upper = append(t.upper, lo)
		if t.built {
			t.fixUpper(lo.pos)
		}
	default:
		if t.built {
			t.fixUpper(lo.pos)
		}
	}
}

// DeletePair removes the whole (u, i) lower heap from consideration
// (Algorithm 1, line 26: an infeasible pair is dropped wholesale).
// Map-addressed; dense-mode callers use DeletePairOf.
func (t *TwoLevel) DeletePair(u model.UserID, i model.ItemID) {
	t.deleteLower(t.lowers[PairKey{u, i}])
}

// DeletePairOf is DeletePair addressed through an entry.
func (t *TwoLevel) DeletePairOf(e *Entry) {
	t.deleteLower(t.lowerOf(e))
}

func (t *TwoLevel) deleteLower(lo *lower) {
	if lo == nil {
		return
	}
	t.count -= lo.heap.Len()
	t.removeUpper(lo.pos)
}

func (t *TwoLevel) removeUpper(i int) {
	lo := t.upper[i]
	last := len(t.upper) - 1
	t.swapUpper(i, last)
	t.upper = t.upper[:last]
	if t.dense == nil {
		delete(t.lowers, lo.key)
	}
	lo.pos = -1
	if i < last {
		t.fixUpper(i)
	}
}

func (t *TwoLevel) fixUpper(i int) {
	if i < 0 || i >= len(t.upper) {
		return
	}
	if !t.siftUp(i) {
		t.siftDown(i)
	}
}

func (t *TwoLevel) swapUpper(a, b int) {
	t.upper[a], t.upper[b] = t.upper[b], t.upper[a]
	t.upper[a].pos = a
	t.upper[b].pos = b
}

func (t *TwoLevel) siftUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !t.upper[i].rootBeats(t.upper[parent]) {
			break
		}
		t.swapUpper(parent, i)
		i = parent
		moved = true
	}
	return moved
}

func (t *TwoLevel) siftDown(i int) {
	n := len(t.upper)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && t.upper[l].rootBeats(t.upper[best]) {
			best = l
		}
		if r < n && t.upper[r].rootBeats(t.upper[best]) {
			best = r
		}
		if best == i {
			return
		}
		t.swapUpper(i, best)
		i = best
	}
}
