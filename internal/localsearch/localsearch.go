// Package localsearch implements the approximation algorithm of §4.2:
// maximizing a non-negative, non-monotone set function under a matroid
// constraint via local search, in the style of Lee, Mirrokni, Nagarajan
// and Sviridenko (SIAM J. Discrete Math. 2010), which yields a 1/(4+ε)
// approximation for one matroid.
//
// The procedure: run an approximate local search (delete / add / swap
// moves that improve the value by at least a (1 + ε/n⁴) factor) on the
// ground set to obtain S₁, then run it again on the ground set minus S₁
// to obtain S₂, and return the better of the two — the second pass is
// what handles non-monotonicity. The complexity is O(ε⁻¹ n⁴ log n) value
// oracle calls, which the paper deems impractical at scale; this
// implementation exists to validate the theory on small instances and to
// serve as a quality yardstick for the greedy heuristics.
package localsearch

import (
	"context"

	"repro/internal/matroid"
	"repro/internal/model"
)

// Value is the set-function oracle f: 2^X → R≥0.
type Value func(s *model.Strategy) float64

// Options tunes the search.
type Options struct {
	// Epsilon controls the improvement threshold (1 + Epsilon/n⁴); the
	// guarantee becomes 1/(4+ε'). Zero means 0.25.
	Epsilon float64
	// MaxIterations caps local moves per pass as a safety valve; zero
	// means 10·n².
	MaxIterations int
}

// Result reports the chosen set and its value, plus search statistics.
type Result struct {
	Strategy    *model.Strategy
	Value       float64
	OracleCalls int
	Moves       int
}

// Maximize runs the two-pass approximate local search over the ground
// set subject to the independence system (a matroid for the guarantee to
// hold; the display-constraint partition matroid in the RevMax use).
func Maximize(ground []model.Triple, sys matroid.IndependenceSystem, f Value, opts Options) Result {
	res, _ := MaximizeCtx(context.Background(), ground, sys, f, opts)
	return res
}

// MaximizeCtx is Maximize with cancellation: ctx is checked before
// every value-oracle call — the unit the O(ε⁻¹ n⁴ log n) complexity is
// counted in — so a canceled search aborts within one oracle call and
// returns the best set found so far alongside ctx.Err().
func MaximizeCtx(ctx context.Context, ground []model.Triple, sys matroid.IndependenceSystem, f Value, opts Options) (Result, error) {
	if opts.Epsilon <= 0 {
		opts.Epsilon = 0.25
	}
	n := len(ground)
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 10*n*n + 100
	}

	calls := 0
	eval := func(s *model.Strategy) float64 {
		calls++
		return f(s)
	}

	s1, moves1, err := localSearch(ctx, ground, sys, eval, opts)
	if err != nil {
		return Result{Strategy: s1, Value: f(s1), OracleCalls: calls, Moves: moves1}, err
	}
	v1 := eval(s1)

	// Second pass on the residual ground set (non-monotone handling).
	var residual []model.Triple
	for _, z := range ground {
		if !s1.Contains(z) {
			residual = append(residual, z)
		}
	}
	s2, moves2, err := localSearch(ctx, residual, sys, eval, opts)
	if err != nil {
		return Result{Strategy: s1, Value: v1, OracleCalls: calls, Moves: moves1 + moves2}, err
	}
	v2 := eval(s2)

	res := Result{Strategy: s1, Value: v1, OracleCalls: calls, Moves: moves1 + moves2}
	if v2 > v1 {
		res.Strategy = s2
		res.Value = v2
	}
	return res, nil
}

// localSearch runs one pass: seed with the best singleton, then apply
// improving delete / add / swap moves until none exceeds the threshold.
// The returned strategy is always internally consistent (moves are
// rolled back before an abort), so a canceled pass still hands back a
// valid — if unconverged — set.
func localSearch(ctx context.Context, ground []model.Triple, sys matroid.IndependenceSystem, eval func(*model.Strategy) float64, opts Options) (*model.Strategy, int, error) {
	s := model.NewStrategy()
	if len(ground) == 0 {
		return s, 0, nil
	}
	n := float64(len(ground))
	threshold := 1 + opts.Epsilon/(n*n*n*n)

	// Seed: best feasible singleton with positive value.
	bestVal := 0.0
	bestIdx := -1
	for idx, z := range ground {
		if err := ctx.Err(); err != nil {
			return s, 0, err
		}
		single := model.StrategyOf(z)
		if !sys.Independent(single) {
			continue
		}
		if v := eval(single); v > bestVal {
			bestVal = v
			bestIdx = idx
		}
	}
	if bestIdx < 0 {
		return s, 0, nil
	}
	s.Add(ground[bestIdx])
	cur := bestVal

	moves := 0
	for moves < opts.MaxIterations {
		improved := false

		// Delete moves.
		for _, z := range s.Triples() {
			if err := ctx.Err(); err != nil {
				return s, moves, err
			}
			s.Remove(z)
			if v := eval(s); v > cur*threshold {
				cur = v
				improved = true
				break
			}
			s.Add(z)
		}
		if improved {
			moves++
			continue
		}

		// Add moves.
		for _, z := range ground {
			if s.Contains(z) {
				continue
			}
			if err := ctx.Err(); err != nil {
				return s, moves, err
			}
			s.Add(z)
			if sys.Independent(s) {
				if v := eval(s); v > cur*threshold {
					cur = v
					improved = true
					break
				}
			}
			s.Remove(z)
		}
		if improved {
			moves++
			continue
		}

		// Swap moves (one out, one in).
		var abort error
		for _, out := range s.Triples() {
			s.Remove(out)
			for _, inz := range ground {
				if s.Contains(inz) || inz == out {
					continue
				}
				if err := ctx.Err(); err != nil {
					abort = err
					break
				}
				s.Add(inz)
				if sys.Independent(s) {
					if v := eval(s); v > cur*threshold {
						cur = v
						improved = true
						break
					}
				}
				s.Remove(inz)
			}
			if improved {
				break
			}
			s.Add(out)
			if abort != nil {
				return s, moves, abort
			}
		}
		if !improved {
			break
		}
		moves++
	}
	return s, moves, nil
}
