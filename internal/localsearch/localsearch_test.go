package localsearch_test

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/localsearch"
	"repro/internal/matroid"
	"repro/internal/model"
	"repro/internal/poibin"
	"repro/internal/revenue"
	"repro/internal/testgen"
)

// bruteBest exhaustively finds the maximum of f over independent subsets
// of ground (≤ ~16 elements).
func bruteBest(ground []model.Triple, sys matroid.IndependenceSystem, f localsearch.Value) float64 {
	n := len(ground)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		s := model.NewStrategy()
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				s.Add(ground[b])
			}
		}
		if !sys.Independent(s) {
			continue
		}
		if v := f(s); v > best {
			best = v
		}
	}
	return best
}

func groundOf(in *model.Instance) []model.Triple {
	var g []model.Triple
	for u := 0; u < in.NumUsers; u++ {
		for _, c := range in.UserCandidates(model.UserID(u)) {
			g = append(g, c.Triple)
		}
	}
	return g
}

func TestLocalSearchAchievesGuaranteeOnRRevMax(t *testing.T) {
	// R-REVMAX: display matroid only, capacity pushed into the effective
	// revenue objective. On tiny instances the local search value must be
	// at least 1/(4+ε) of the exhaustive optimum — in practice it is far
	// closer; we assert the theoretical bound and track the ratio.
	rng := dist.NewRNG(1)
	p := testgen.Params{
		Users: 2, Items: 3, Classes: 2, T: 2, K: 1,
		MaxCap: 1, CandProb: 0.45, MinPrice: 1, MaxPrice: 30,
	}
	oracle := poibin.ExactOracle{}
	checked := 0
	for trial := 0; trial < 12 && checked < 6; trial++ {
		in := testgen.Random(rng, p)
		ground := groundOf(in)
		if len(ground) == 0 || len(ground) > 12 {
			continue
		}
		checked++
		sys := matroid.NewPartition(in.K)
		f := func(s *model.Strategy) float64 {
			return revenue.EffectiveRevenue(in, s, oracle)
		}
		opt := bruteBest(ground, sys, f)
		res := localsearch.Maximize(ground, sys, f, localsearch.Options{})
		if !sys.Independent(res.Strategy) {
			t.Fatal("local search output violates the matroid")
		}
		if opt > 0 && res.Value < opt/4.5 {
			t.Fatalf("trial %d: local search %v below guarantee vs optimum %v", trial, res.Value, opt)
		}
		if res.Value > opt+1e-9 {
			t.Fatalf("local search %v exceeds exhaustive optimum %v", res.Value, opt)
		}
	}
	if checked == 0 {
		t.Skip("no suitably small instances generated")
	}
}

func TestLocalSearchEmptyGround(t *testing.T) {
	res := localsearch.Maximize(nil, matroid.NewPartition(1), func(*model.Strategy) float64 { return 0 }, localsearch.Options{})
	if res.Strategy.Len() != 0 || res.Value != 0 {
		t.Fatal("empty ground set should yield empty result")
	}
}

func TestLocalSearchModularFunctionIsOptimal(t *testing.T) {
	// For a modular (additive) non-negative function under a partition
	// matroid, local search must reach the exact optimum: pick the best
	// element of every partition block.
	ground := []model.Triple{
		{U: 0, I: 0, T: 1}, {U: 0, I: 1, T: 1}, {U: 0, I: 2, T: 1},
		{U: 0, I: 0, T: 2}, {U: 0, I: 1, T: 2},
		{U: 1, I: 0, T: 1},
	}
	weights := map[model.Triple]float64{
		{U: 0, I: 0, T: 1}: 5, {U: 0, I: 1, T: 1}: 9, {U: 0, I: 2, T: 1}: 2,
		{U: 0, I: 0, T: 2}: 4, {U: 0, I: 1, T: 2}: 7,
		{U: 1, I: 0, T: 1}: 3,
	}
	f := func(s *model.Strategy) float64 {
		v := 0.0
		for _, z := range s.Triples() {
			v += weights[z]
		}
		return v
	}
	sys := matroid.NewPartition(1)
	res := localsearch.Maximize(ground, sys, f, localsearch.Options{})
	if want := 9.0 + 7 + 3; res.Value != want {
		t.Fatalf("modular optimum = %v, want %v (picked %v)", res.Value, want, res.Strategy.Triples())
	}
}

func TestLocalSearchHandlesNonMonotone(t *testing.T) {
	// A function where adding a second element hurts: f({a}) = 10,
	// f({b}) = 8, f({a,b}) = 3. Local search should return {a}.
	a := model.Triple{U: 0, I: 0, T: 1}
	b := model.Triple{U: 0, I: 1, T: 2}
	f := func(s *model.Strategy) float64 {
		switch {
		case s.Len() == 0:
			return 0
		case s.Len() == 2:
			return 3
		case s.Contains(a):
			return 10
		default:
			return 8
		}
	}
	res := localsearch.Maximize([]model.Triple{a, b}, matroid.NewPartition(1), f, localsearch.Options{})
	if res.Value != 10 || !res.Strategy.Contains(a) || res.Strategy.Len() != 1 {
		t.Fatalf("got value %v set %v, want {a} with 10", res.Value, res.Strategy.Triples())
	}
}

func TestLocalSearchSecondPassRescuesComplement(t *testing.T) {
	// Craft a function where the first pass's local optimum is poor but
	// the complement holds the real value, exercising the two-pass
	// non-monotone handling. a alone is a strong local optimum (adding
	// anything to it hurts), but {b, c} on the residual set is better.
	a := model.Triple{U: 0, I: 0, T: 1}
	b := model.Triple{U: 1, I: 1, T: 1}
	c := model.Triple{U: 2, I: 2, T: 1}
	f := func(s *model.Strategy) float64 {
		ha, hb, hc := s.Contains(a), s.Contains(b), s.Contains(c)
		switch {
		case ha && !hb && !hc:
			return 10
		case ha: // a plus anything collapses
			return 1
		case hb && hc:
			return 14
		case hb || hc:
			return 6
		default:
			return 0
		}
	}
	res := localsearch.Maximize([]model.Triple{a, b, c}, matroid.NewPartition(1), f, localsearch.Options{})
	if res.Value != 14 {
		t.Fatalf("two-pass search found %v, want 14", res.Value)
	}
}

func TestLocalSearchRespectsIterationCap(t *testing.T) {
	rng := dist.NewRNG(3)
	in := testgen.Random(rng, testgen.Default())
	ground := groundOf(in)
	f := func(s *model.Strategy) float64 { return revenue.Revenue(in, s) }
	res := localsearch.Maximize(ground, matroid.NewPartition(in.K), f, localsearch.Options{MaxIterations: 3})
	if res.Moves > 6 { // two passes, 3 each
		t.Fatalf("Moves = %d exceeds cap", res.Moves)
	}
}
