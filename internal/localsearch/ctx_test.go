package localsearch

import (
	"context"
	"errors"
	"testing"

	"repro/internal/matroid"
	"repro/internal/model"
)

// lsGround builds a small ground set over 3 users × 2 steps.
func lsGround() []model.Triple {
	var ground []model.Triple
	for u := 0; u < 3; u++ {
		for i := 0; i < 3; i++ {
			for t := 1; t <= 2; t++ {
				ground = append(ground, model.Triple{
					U: model.UserID(u), I: model.ItemID(i), T: model.TimeStep(t),
				})
			}
		}
	}
	return ground
}

// additive is a simple modular objective: each triple contributes a
// fixed positive weight.
func additive(s *model.Strategy) float64 {
	total := 0.0
	for _, z := range s.Triples() {
		total += float64(int(z.I)+1) * float64(z.T)
	}
	return total
}

// TestMaximizeCtxBackgroundMatches: MaximizeCtx under a background
// context returns exactly what Maximize does.
func TestMaximizeCtxBackgroundMatches(t *testing.T) {
	ground := lsGround()
	sys := matroid.NewPartition(1)
	plain := Maximize(ground, sys, additive, Options{})
	withCtx, err := MaximizeCtx(context.Background(), ground, sys, additive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if withCtx.Value != plain.Value || withCtx.Strategy.Len() != plain.Strategy.Len() {
		t.Fatalf("ctx variant (%v, %d) != plain (%v, %d)",
			withCtx.Value, withCtx.Strategy.Len(), plain.Value, plain.Strategy.Len())
	}
}

// TestMaximizeCtxCanceledUpfront: a pre-canceled context aborts before
// any oracle call.
func TestMaximizeCtxCanceledUpfront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err := MaximizeCtx(ctx, lsGround(), matroid.NewPartition(1), func(s *model.Strategy) float64 {
		calls++
		return additive(s)
	}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls > 1 {
		t.Fatalf("%d oracle calls after upfront cancellation", calls)
	}
}

// TestMaximizeCtxCancelMidSearch: canceling from inside the value
// oracle stops the search within one further oracle call, returns the
// consistent partial set, and surfaces ctx.Err() — the "within one
// iteration" contract of the PR checklist, exercised under -race in CI.
func TestMaximizeCtxCancelMidSearch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	const cancelAt = 7
	res, err := MaximizeCtx(ctx, lsGround(), matroid.NewPartition(1), func(s *model.Strategy) float64 {
		calls++
		if calls == cancelAt {
			cancel()
		}
		return additive(s)
	}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// One call may already be in flight when cancel fires, plus the
	// final-value evaluation on the abort path.
	if calls > cancelAt+2 {
		t.Errorf("%d oracle calls; cancellation at %d must stop within one call", calls, cancelAt)
	}
	if res.Strategy == nil {
		t.Fatal("aborted search must still return the partial strategy")
	}
}
