// Package textplot renders experiment output as plain-text tables, bar
// charts, and line series — the repository's stand-in for the paper's
// matplotlib figures. Everything renders deterministically to strings so
// experiment output can be golden-tested.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are used as-is.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the aligned table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Bars renders a horizontal bar chart: one labeled bar per value, scaled
// to width characters at the maximum.
func Bars(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s | %s %s\n", maxL, labels[i], strings.Repeat("#", n), Num(v))
	}
	return b.String()
}

// Series renders a y-vs-x line as a sparse ASCII plot plus the raw
// points, good enough to eyeball growth shapes (Figures 4 and 6).
func Series(title string, xs, ys []float64, rows, cols int) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	if len(xs) == 0 || len(xs) != len(ys) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if rows <= 0 {
		rows = 12
	}
	if cols <= 0 {
		cols = 60
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := range xs {
		minX = math.Min(minX, xs[i])
		maxX = math.Max(maxX, xs[i])
		minY = math.Min(minY, ys[i])
		maxY = math.Max(maxY, ys[i])
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for i := range xs {
		cx := 0
		if maxX > minX {
			cx = int((xs[i] - minX) / (maxX - minX) * float64(cols-1))
		}
		cy := 0
		if maxY > minY {
			cy = int((ys[i] - minY) / (maxY - minY) * float64(rows-1))
		}
		grid[rows-1-cy][cx] = '*'
	}
	for r := range grid {
		yTop := maxY
		if rows > 1 {
			yTop = maxY - (maxY-minY)*float64(r)/float64(rows-1)
		}
		fmt.Fprintf(&b, "%12s |%s\n", Num(yTop), string(grid[r]))
	}
	fmt.Fprintf(&b, "%12s  %s -> %s\n", "", Num(minX), Num(maxX))
	return b.String()
}

// Num formats a float compactly (K/M suffixes for large magnitudes).
func Num(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e9:
		return fmt.Sprintf("%.2fB", v/1e9)
	case a >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case a >= 1e4:
		return fmt.Sprintf("%.1fK", v/1e3)
	case a >= 1:
		return fmt.Sprintf("%.2f", v)
	case a == 0:
		return "0"
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Histogram renders labeled counts (Figure 5's repeat histograms).
func Histogram(title string, buckets []string, counts []int, width int) string {
	values := make([]float64, len(counts))
	total := 0
	for _, c := range counts {
		total += c
	}
	for i, c := range counts {
		values[i] = float64(c)
	}
	s := Bars(title, buckets, values, width)
	return s + fmt.Sprintf("total: %d\n", total)
}
