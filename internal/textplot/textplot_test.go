package textplot_test

import (
	"strings"
	"testing"

	"repro/internal/textplot"
)

func TestTableAlignment(t *testing.T) {
	tb := &textplot.Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-name", "22")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4+0 { // title, header, separator, 2 rows → 5
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	if !strings.Contains(out, "demo") || !strings.Contains(out, "a-much-longer-name") {
		t.Fatalf("missing content:\n%s", out)
	}
	// Header row padded at least as wide as the longest cell.
	header := lines[1]
	if len(header) < len("a-much-longer-name") {
		t.Fatalf("header not padded: %q", header)
	}
}

func TestBarsScaling(t *testing.T) {
	out := textplot.Bars("title", []string{"a", "b"}, []float64{10, 5}, 10)
	if !strings.Contains(out, "title") {
		t.Fatal("missing title")
	}
	aLine, bLine := "", ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "a") {
			aLine = l
		}
		if strings.HasPrefix(l, "b") {
			bLine = l
		}
	}
	if strings.Count(aLine, "#") != 10 {
		t.Fatalf("max bar should be full width: %q", aLine)
	}
	if strings.Count(bLine, "#") != 5 {
		t.Fatalf("half bar should be half width: %q", bLine)
	}
}

func TestBarsAllZero(t *testing.T) {
	out := textplot.Bars("", []string{"x"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Fatalf("zero value drew a bar: %q", out)
	}
}

func TestSeriesHandlesEmptyAndMismatch(t *testing.T) {
	if out := textplot.Series("t", nil, nil, 5, 10); !strings.Contains(out, "no data") {
		t.Fatalf("empty series: %q", out)
	}
	if out := textplot.Series("t", []float64{1}, []float64{1, 2}, 5, 10); !strings.Contains(out, "no data") {
		t.Fatalf("mismatched series: %q", out)
	}
}

func TestSeriesPlotsPoints(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, 2, 3, 4}
	out := textplot.Series("linear", xs, ys, 4, 20)
	if strings.Count(out, "*") < 3 {
		t.Fatalf("too few plotted points:\n%s", out)
	}
	if !strings.Contains(out, "linear") {
		t.Fatal("missing title")
	}
}

func TestSeriesConstantY(t *testing.T) {
	out := textplot.Series("flat", []float64{1, 2, 3}, []float64{5, 5, 5}, 4, 20)
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series lost its points:\n%s", out)
	}
}

func TestNumFormats(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{2.5, "2.50"},
		{12345, "12.3K"},
		{2_500_000, "2.50M"},
		{3_000_000_000, "3.00B"},
		{0.1234, "0.1234"},
	}
	for _, c := range cases {
		if got := textplot.Num(c.v); got != c.want {
			t.Errorf("Num(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestHistogramTotals(t *testing.T) {
	out := textplot.Histogram("h", []string{"1", "2"}, []int{3, 7}, 10)
	if !strings.Contains(out, "total: 10") {
		t.Fatalf("missing total:\n%s", out)
	}
}
