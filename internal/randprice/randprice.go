// Package randprice implements the random-price extension of §7: when a
// price prediction model yields distributions rather than exact values,
// the expected revenue of a strategy is approximated by a second-order
// Taylor expansion of each (user, class) group's revenue around the mean
// price vector (Eq. 7–8), which is distribution independent.
//
// Documented substitution: the paper's Eq. 8 drops the second-derivative
// factors from the final line ("g(z̄) + ½Σ var(zₐ) + Σ cov"), which is a
// typo — the correct second-order term is ½ ΣΣ ∂²g/∂zₐ∂z_b · cov(zₐ,z_b),
// and that is what this package computes (via central finite
// differences). Prices enter the revenue non-linearly both directly
// (the p(i,t) factor) and through the price-dependent adoption
// probability q(u,i,t) = q̃(p), so the Hessian is generally non-zero.
package randprice

import (
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/model"
)

// AdoptFn reports the primitive adoption probability of triple (u,i,t)
// when the item's price at t is price. It must be deterministic and is
// expected to be anti-monotone in price (valuation semantics), though
// nothing here requires that.
type AdoptFn func(u model.UserID, i model.ItemID, t model.TimeStep, price float64) float64

// Model couples an instance (whose stored prices are the *means* of the
// price distributions) with variances, optional covariances, and the
// price-dependent adoption function.
type Model struct {
	In *model.Instance
	// Adopt maps price to adoption probability per triple.
	Adopt AdoptFn
	// Var returns the variance of p(i,t).
	Var func(i model.ItemID, t model.TimeStep) float64
	// Cov returns the covariance between two distinct price coordinates;
	// nil means independent prices. (Within-item temporal correlation is
	// the typical non-zero case.)
	Cov func(iA model.ItemID, tA model.TimeStep, iB model.ItemID, tB model.TimeStep) float64
}

// coordinate identifies one price variable appearing in a group.
type coordinate struct {
	i model.ItemID
	t model.TimeStep
}

// group is one (user, class) block of the strategy with its triples
// sorted by time; the block's revenue depends only on the prices of its
// own triples.
type group struct {
	u       model.UserID
	triples []model.Triple
	coords  []coordinate
}

// groupsOf splits the strategy into (user, class) groups.
func (m *Model) groupsOf(s *model.Strategy) []group {
	byKey := make(map[[2]int32]*group)
	var order [][2]int32
	for _, z := range s.Triples() {
		key := [2]int32{int32(z.U), int32(m.In.Class(z.I))}
		g := byKey[key]
		if g == nil {
			g = &group{u: z.U}
			byKey[key] = g
			order = append(order, key)
		}
		g.triples = append(g.triples, z)
	}
	out := make([]group, 0, len(byKey))
	for _, key := range order {
		g := byKey[key]
		sort.Slice(g.triples, func(a, b int) bool {
			if g.triples[a].T != g.triples[b].T {
				return g.triples[a].T < g.triples[b].T
			}
			return g.triples[a].I < g.triples[b].I
		})
		seen := make(map[coordinate]bool)
		for _, z := range g.triples {
			c := coordinate{z.I, z.T}
			if !seen[c] {
				seen[c] = true
				g.coords = append(g.coords, c)
			}
		}
		out = append(out, *g)
	}
	return out
}

// value computes the group's revenue contribution when its price
// coordinates take the given values (same order as g.coords).
func (m *Model) value(g *group, prices []float64) float64 {
	priceOf := func(i model.ItemID, t model.TimeStep) float64 {
		for k, c := range g.coords {
			if c.i == i && c.t == t {
				return prices[k]
			}
		}
		return m.In.Price(i, t)
	}
	qs := make([]float64, len(g.triples))
	for k, z := range g.triples {
		qs[k] = m.Adopt(z.U, z.I, z.T, priceOf(z.I, z.T))
	}
	total := 0.0
	for k, z := range g.triples {
		prob := qs[k]
		// Saturation memory (price independent).
		mem := 0.0
		for _, w := range g.triples {
			if w.T < z.T {
				mem += 1 / float64(z.T-w.T)
			}
		}
		if mem > 0 {
			prob *= math.Pow(m.In.Beta(z.I), mem)
		}
		// Competition: earlier triples and same-time other items.
		for j, w := range g.triples {
			if w == z {
				continue
			}
			if w.T < z.T || (w.T == z.T && w.I != z.I) {
				prob *= 1 - qs[j]
			}
		}
		total += priceOf(z.I, z.T) * prob
	}
	return total
}

// MeanProxyRevenue evaluates the revenue with every price fixed at its
// mean — the "obvious way" heuristic §7 mentions before introducing the
// Taylor method.
func (m *Model) MeanProxyRevenue(s *model.Strategy) float64 {
	total := 0.0
	for _, g := range m.groupsOf(s) {
		means := m.meansOf(&g)
		total += m.value(&g, means)
	}
	return total
}

// TaylorRevenue evaluates the second-order Taylor approximation of the
// expected revenue: per group, g(z̄) + ½ ΣΣ H_ab·cov(a,b), with the
// Hessian computed by central finite differences.
func (m *Model) TaylorRevenue(s *model.Strategy) float64 {
	total := 0.0
	for _, g := range m.groupsOf(s) {
		means := m.meansOf(&g)
		total += m.value(&g, means)
		n := len(g.coords)
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				cov := m.covOf(g.coords[a], g.coords[b])
				if cov == 0 {
					continue
				}
				h := m.hessian(&g, means, a, b)
				if a == b {
					total += 0.5 * h * cov
				} else {
					total += h * cov // symmetric pair counted once ⇒ full weight
				}
			}
		}
	}
	return total
}

func (m *Model) meansOf(g *group) []float64 {
	means := make([]float64, len(g.coords))
	for k, c := range g.coords {
		means[k] = m.In.Price(c.i, c.t)
	}
	return means
}

func (m *Model) covOf(a, b coordinate) float64 {
	if a == b {
		return m.Var(a.i, a.t)
	}
	if m.Cov == nil {
		return 0
	}
	return m.Cov(a.i, a.t, b.i, b.t)
}

// hessian computes ∂²value/∂pₐ∂p_b at the mean via central differences.
func (m *Model) hessian(g *group, means []float64, a, b int) float64 {
	step := func(k int) float64 {
		h := 1e-4 * math.Abs(means[k])
		if h < 1e-5 {
			h = 1e-5
		}
		return h
	}
	ha, hb := step(a), step(b)
	p := make([]float64, len(means))
	eval := func(da, db float64) float64 {
		copy(p, means)
		p[a] += da
		p[b] += db
		return m.value(g, p)
	}
	if a == b {
		return (eval(ha, 0) - 2*eval(0, 0) + eval(-ha, 0)) / (ha * ha)
	}
	return (eval(ha, hb) - eval(ha, -hb) - eval(-ha, hb) + eval(-ha, -hb)) / (4 * ha * hb)
}

// MonteCarloRevenue estimates the true expected revenue by sampling
// price vectors. Prices are drawn as independent Gaussians (mean from
// the instance, variance from Var); covariances, if configured, are
// ignored here — the estimator exists as ground truth for the
// independent case used in the experiments. Negative samples are clamped
// at zero.
func (m *Model) MonteCarloRevenue(s *model.Strategy, samples int, seed uint64) float64 {
	if samples <= 0 {
		samples = 1000
	}
	rng := dist.NewRNG(seed)
	groups := m.groupsOf(s)
	total := 0.0
	for _, g := range groups {
		means := m.meansOf(&g)
		sds := make([]float64, len(g.coords))
		for k, c := range g.coords {
			sds[k] = math.Sqrt(m.Var(c.i, c.t))
		}
		p := make([]float64, len(means))
		sum := 0.0
		for sIdx := 0; sIdx < samples; sIdx++ {
			for k := range p {
				v := rng.Normal(means[k], sds[k])
				if v < 0 {
					v = 0
				}
				p[k] = v
			}
			sum += m.value(&g, p)
		}
		total += sum / float64(samples)
	}
	return total
}
