package randprice_test

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/kde"
	"repro/internal/model"
	"repro/internal/randprice"
	"repro/internal/revenue"
	"repro/internal/testgen"
)

// valuationAdopt builds an AdoptFn from per-item Gaussian valuations,
// scaled so it agrees with the instance's stored q at the mean price.
func valuationModel(in *model.Instance) (randprice.AdoptFn, []kde.GaussianProxy) {
	proxies := make([]kde.GaussianProxy, in.NumItems())
	for i := range proxies {
		proxies[i] = kde.GaussianProxy{Mu: in.Price(model.ItemID(i), 1) * 1.1, Sigma: 10}
	}
	fn := func(u model.UserID, i model.ItemID, t model.TimeStep, price float64) float64 {
		return dist.Clamp01(proxies[i].Survival(price) * 0.8)
	}
	return fn, proxies
}

func TestZeroVarianceMatchesDeterministicRevenue(t *testing.T) {
	// With Var ≡ 0 and an AdoptFn that reproduces the instance's stored q
	// at the mean prices, Taylor == mean proxy == Rev(S).
	rng := dist.NewRNG(1)
	in := testgen.Random(rng, testgen.Default())
	s := testgen.RandomStrategy(rng, in, 0.4)

	m := &randprice.Model{
		In: in,
		Adopt: func(u model.UserID, i model.ItemID, tt model.TimeStep, price float64) float64 {
			return in.Q(u, i, tt) // ignore the price: exact-price regime
		},
		Var: func(model.ItemID, model.TimeStep) float64 { return 0 },
	}
	want := revenue.Revenue(in, s)
	if got := m.MeanProxyRevenue(s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean proxy %v != deterministic %v", got, want)
	}
	if got := m.TaylorRevenue(s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Taylor %v != deterministic %v", got, want)
	}
}

func TestTaylorExactForQuadraticContribution(t *testing.T) {
	// Single triple, adoption linear in price: contribution p·q(p) is
	// quadratic, so the second-order Taylor expectation is *exact*:
	// E[p(a−bp)] = p̄(a−bp̄) − b·var.
	in := model.NewInstance(1, 1, 1, 1)
	in.SetItem(0, 0, 1, 1)
	in.SetPrice(0, 1, 10)
	in.AddCandidate(0, 0, 1, 0.5)
	in.FinishCandidates()
	s := model.StrategyOf(model.Triple{U: 0, I: 0, T: 1})

	a, b := 0.9, 0.02
	variance := 4.0
	m := &randprice.Model{
		In: in,
		Adopt: func(_ model.UserID, _ model.ItemID, _ model.TimeStep, price float64) float64 {
			return a - b*price
		},
		Var: func(model.ItemID, model.TimeStep) float64 { return variance },
	}
	want := 10*(a-b*10) - b*variance
	got := m.TaylorRevenue(s)
	if math.Abs(got-want) > 1e-4 {
		t.Fatalf("Taylor = %v, want exact %v", got, want)
	}
	// The mean proxy misses the variance correction.
	proxy := m.MeanProxyRevenue(s)
	if math.Abs(proxy-10*(a-b*10)) > 1e-9 {
		t.Fatalf("mean proxy = %v, want %v", proxy, 10*(a-b*10))
	}
}

func TestTaylorBeatsMeanProxyAgainstMonteCarlo(t *testing.T) {
	rng := dist.NewRNG(2)
	p := testgen.Default()
	p.MinPrice, p.MaxPrice = 50, 150
	in := testgen.Random(rng, p)
	s := testgen.RandomValidStrategy(rng, in, 0.4)
	if s.Len() == 0 {
		t.Skip("empty strategy sampled")
	}
	adopt, _ := valuationModel(in)
	m := &randprice.Model{
		In:    in,
		Adopt: adopt,
		Var:   func(model.ItemID, model.TimeStep) float64 { return 64 }, // sd 8
	}
	mc := m.MonteCarloRevenue(s, 60000, 7)
	taylor := m.TaylorRevenue(s)
	proxy := m.MeanProxyRevenue(s)
	errT := math.Abs(taylor - mc)
	errP := math.Abs(proxy - mc)
	// Taylor must not be materially worse than the mean proxy, and should
	// usually be better (it captures curvature).
	if errT > errP+0.02*math.Abs(mc) {
		t.Fatalf("Taylor error %v worse than proxy error %v (mc %v)", errT, errP, mc)
	}
}

func TestMonteCarloDeterministicForSeed(t *testing.T) {
	rng := dist.NewRNG(3)
	in := testgen.Random(rng, testgen.Default())
	s := testgen.RandomStrategy(rng, in, 0.3)
	adopt, _ := valuationModel(in)
	m := &randprice.Model{
		In:    in,
		Adopt: adopt,
		Var:   func(model.ItemID, model.TimeStep) float64 { return 25 },
	}
	a := m.MonteCarloRevenue(s, 500, 11)
	b := m.MonteCarloRevenue(s, 500, 11)
	if a != b {
		t.Fatal("Monte Carlo not deterministic for fixed seed")
	}
}

func TestCovarianceTermContributes(t *testing.T) {
	// Two triples of the same item at different times, positively
	// correlated prices. The covariance term must change the Taylor value
	// relative to the independent case.
	in := model.NewInstance(1, 1, 2, 1)
	in.SetItem(0, 0, 0.9, 2)
	in.SetPrice(0, 1, 100)
	in.SetPrice(0, 2, 100)
	in.AddCandidate(0, 0, 1, 0.5)
	in.AddCandidate(0, 0, 2, 0.5)
	in.FinishCandidates()
	s := model.StrategyOf(
		model.Triple{U: 0, I: 0, T: 1},
		model.Triple{U: 0, I: 0, T: 2},
	)
	proxy := kde.GaussianProxy{Mu: 110, Sigma: 15}
	m := &randprice.Model{
		In: in,
		Adopt: func(_ model.UserID, _ model.ItemID, _ model.TimeStep, price float64) float64 {
			return dist.Clamp01(proxy.Survival(price))
		},
		Var: func(model.ItemID, model.TimeStep) float64 { return 36 },
	}
	indep := m.TaylorRevenue(s)
	m.Cov = func(_ model.ItemID, _ model.TimeStep, _ model.ItemID, _ model.TimeStep) float64 {
		return 30
	}
	corr := m.TaylorRevenue(s)
	if indep == corr {
		t.Fatal("covariance term had no effect")
	}
}

func TestEmptyStrategyIsZero(t *testing.T) {
	rng := dist.NewRNG(4)
	in := testgen.Random(rng, testgen.Default())
	adopt, _ := valuationModel(in)
	m := &randprice.Model{
		In:    in,
		Adopt: adopt,
		Var:   func(model.ItemID, model.TimeStep) float64 { return 1 },
	}
	empty := model.NewStrategy()
	if m.TaylorRevenue(empty) != 0 || m.MeanProxyRevenue(empty) != 0 || m.MonteCarloRevenue(empty, 10, 1) != 0 {
		t.Fatal("empty strategy should yield zero everywhere")
	}
}
