// Package revenue implements the RevMax revenue model of Lu et al.
// (VLDB 2014): memory and saturation (Eq. 1), the dynamic adoption
// probability (Definition 1), the expected-revenue objective (Definition
// 2), marginal revenue (Definition 3), and the effective dynamic adoption
// probability with the capacity factor B_S(i,t) (Definition 4).
//
// The central structural fact exploited here is that q_S(u,i,t) depends
// only on triples of S with the same user and the same item class at time
// ≤ t. Rev(S) therefore decomposes into independent (user, class) groups,
// and the marginal revenue of a triple touches exactly one group. The
// Evaluator maintains this decomposition incrementally, which is what the
// greedy algorithms in internal/core build on.
package revenue

import (
	"math"
	"sort"

	"repro/internal/model"
)

// groupKey identifies one (user, class) group.
type groupKey struct {
	u model.UserID
	c model.ClassID
}

// entry is one chosen triple inside a group, with its primitive
// probability cached.
type entry struct {
	z model.Triple
	q float64
}

// group holds the chosen triples of one (user, class) pair, sorted by
// time (ties broken by item for determinism), plus the group's cached
// revenue contribution.
type group struct {
	entries []entry
	revenue float64
}

func (g *group) insert(e entry) {
	i := sort.Search(len(g.entries), func(k int) bool {
		ek := g.entries[k]
		if ek.z.T != e.z.T {
			return ek.z.T > e.z.T
		}
		return ek.z.I >= e.z.I
	})
	g.entries = append(g.entries, entry{})
	copy(g.entries[i+1:], g.entries[i:])
	g.entries[i] = e
}

func (g *group) remove(z model.Triple) bool {
	for i, e := range g.entries {
		if e.z == z {
			g.entries = append(g.entries[:i], g.entries[i+1:]...)
			return true
		}
	}
	return false
}

// Memory computes M_S(u,i,t) (Eq. 1) for a time-sorted list of same-class
// triples of one user: the sum of 1/(t−τ) over all class-mate
// recommendations at times τ < t. The item argument is not needed because
// memory is class-wide.
func memoryOf(entries []entry, t model.TimeStep) float64 {
	m := 0.0
	for _, e := range entries {
		if e.z.T < t {
			m += 1 / float64(t-e.z.T)
		}
	}
	return m
}

// dynamicProb computes q_S(u,i,t) per Definition 1 for the triple at
// index idx of a group's entry list, given the instance's saturation
// factor beta for that item. The entries must contain the triple itself.
func dynamicProb(in *model.Instance, entries []entry, idx int) float64 {
	e := entries[idx]
	t := e.z.T
	beta := in.Beta(e.z.I)
	mem := memoryOf(entries, t)
	p := e.q
	if mem > 0 {
		p *= math.Pow(beta, mem)
	}
	for _, o := range entries {
		if o.z == e.z {
			continue
		}
		switch {
		case o.z.T < t:
			p *= 1 - o.q
		case o.z.T == t && o.z.I != e.z.I:
			p *= 1 - o.q
		}
	}
	return p
}

// groupRevenue computes the revenue contribution Σ p(i,t)·q_S(u,i,t) of
// one (user, class) group.
func groupRevenue(in *model.Instance, entries []entry) float64 {
	rev := 0.0
	for idx, e := range entries {
		rev += in.Price(e.z.I, e.z.T) * dynamicProb(in, entries, idx)
	}
	return rev
}

// Evaluator incrementally maintains Rev(S) as triples are added to and
// removed from a strategy. The zero value is not usable; construct with
// NewEvaluator.
//
// Groups live in a dense array indexed by the instance's (user, class)
// group IDs — no map lookups on the hot path — and MarginalGain works
// in a reused scratch buffer, so the per-call allocation of the old
// map-based evaluator is gone. Triples outside every indexed group
// (possible only on unindexed instances or for hypothetical users) fall
// back to a lazily allocated overflow map. Not safe for concurrent use.
type Evaluator struct {
	in      *model.Instance
	groups  []group             // dense, indexed by model group ID
	extra   map[groupKey]*group // overflow for unindexed (user, class) pairs
	scratch []entry             // reused by MarginalGain
	total   float64
	size    int
}

// NewEvaluator returns an evaluator for the empty strategy on instance in.
// Group entry storage is carved out of one backing array sized by each
// group's selection bound, so the per-group grow-allocations of the
// map era disappear; a group overflowing its bound (possible only via
// non-candidate triples) falls back to ordinary append growth.
func NewEvaluator(in *model.Instance) *Evaluator {
	ev := &Evaluator{in: in, groups: make([]group, in.NumGroups())}
	if n := len(ev.groups); n > 0 {
		// A group can hold at most min(its candidate count, K·T) entries:
		// the display constraint caps a user at K·T selections total.
		bound := in.K * in.T
		total := 0
		caps := make([]int, n)
		for g := range caps {
			sz := len(in.GroupCandIDs(int32(g)))
			if sz > bound {
				sz = bound
			}
			caps[g] = sz
			total += sz
		}
		backing := make([]entry, total)
		off := 0
		for g := range ev.groups {
			ev.groups[g].entries = backing[off : off : off+caps[g]]
			off += caps[g]
		}
	}
	return ev
}

// Instance returns the underlying instance.
func (ev *Evaluator) Instance() *model.Instance { return ev.in }

// Total returns Rev(S) for the current strategy S.
func (ev *Evaluator) Total() float64 { return ev.total }

// Len returns |S|.
func (ev *Evaluator) Len() int { return ev.size }

// ResetTotal forces the accumulated total back to exactly zero on an
// empty evaluator. Add/Remove maintain total as a running sum of
// per-group deltas, so unwinding a strategy entry by entry can leave a
// float residue of ±ulps even though every group's revenue is exactly
// zero again; persistent solver sessions call this after an unwind so
// the next solve's totals are bit-identical to a fresh evaluator's.
// Panics when entries remain — a non-empty total is meaningful and
// must not be discarded.
func (ev *Evaluator) ResetTotal() {
	if ev.size != 0 {
		panic("revenue: ResetTotal on a non-empty evaluator")
	}
	ev.total = 0
}

// groupAt resolves the (user, class) group for a triple; create controls
// whether a missing overflow group is allocated. nil means "no group and
// none created".
func (ev *Evaluator) groupAt(u model.UserID, c model.ClassID, create bool) *group {
	if gid, ok := ev.in.GroupID(u, c); ok {
		return &ev.groups[gid]
	}
	g := ev.extra[groupKey{u, c}]
	if g == nil && create {
		g = &group{}
		if ev.extra == nil {
			ev.extra = make(map[groupKey]*group)
		}
		ev.extra[groupKey{u, c}] = g
	}
	return g
}

// GroupSize returns the number of chosen triples in the (user, class)
// group of triple z. This is the |set(u, C(i))| used by lazy forward.
func (ev *Evaluator) GroupSize(u model.UserID, c model.ClassID) int {
	g := ev.groupAt(u, c, false)
	if g == nil {
		return 0
	}
	return len(g.entries)
}

// GroupSizeID is GroupSize addressed by candidate ID: a direct array
// read, no class lookup or scan.
func (ev *Evaluator) GroupSizeID(id model.CandID) int {
	return len(ev.groups[ev.in.GroupOf(id)].entries)
}

// Scratch is a reusable arena for marginal-gain evaluation. The
// evaluator's built-in scratch makes MarginalGain single-threaded; the
// parallel G-Greedy workers each own a Scratch and call
// MarginalGainIDScratch concurrently instead. The zero value is ready
// to use and grows to the largest group evaluated through it.
type Scratch struct {
	buf []entry
}

// marginalWith computes the gain of adding e to g using the given
// scratch buffer (no allocation once warm). The arithmetic — entry
// order, operation sequence — is exactly the map-era computation, so
// results are bit-identical regardless of which scratch is used: the
// buffer's prior content never influences the value.
func (ev *Evaluator) marginalWith(g *group, e entry, buf *[]entry) float64 {
	if len(g.entries) == 0 {
		// Singleton group: gain is just p·q (no saturation, no competition).
		return ev.in.Price(e.z.I, e.z.T) * e.q
	}
	need := len(g.entries) + 1
	if cap(*buf) < need {
		*buf = make([]entry, 0, need*2)
	}
	tmp := (*buf)[:len(g.entries)]
	copy(tmp, g.entries)
	tmp = append(tmp, e)
	return groupRevenue(ev.in, tmp) - g.revenue
}

// marginalInto is marginalWith on the evaluator's own scratch.
func (ev *Evaluator) marginalInto(g *group, e entry) float64 {
	return ev.marginalWith(g, e, &ev.scratch)
}

// MarginalGain returns Rev(S ∪ {z}) − Rev(S) (Definition 3) without
// mutating the evaluator. q is the primitive adoption probability of z.
func (ev *Evaluator) MarginalGain(z model.Triple, q float64) float64 {
	g := ev.groupAt(z.U, ev.in.Class(z.I), false)
	if g == nil {
		return ev.in.Price(z.I, z.T) * q
	}
	return ev.marginalInto(g, entry{z, q})
}

// MarginalGainID is MarginalGain addressed by candidate ID; the
// candidate's primitive probability comes from the instance.
func (ev *Evaluator) MarginalGainID(id model.CandID) float64 {
	c := ev.in.CandAt(id)
	return ev.marginalInto(&ev.groups[ev.in.GroupOf(id)], entry{c.Triple, c.Q})
}

// MarginalGainIDScratch is MarginalGainID evaluated through a
// caller-owned Scratch, bit-identical to MarginalGainID. Concurrent
// calls with distinct Scratches are safe provided nothing concurrently
// mutates the candidate's (user, class) group — the invariant the
// parallel solver's user partitioning provides: a group never spans
// partitions, and a partition's groups are only mutated between its own
// settle dispatches.
func (ev *Evaluator) MarginalGainIDScratch(id model.CandID, sc *Scratch) float64 {
	c := ev.in.CandAt(id)
	return ev.marginalWith(&ev.groups[ev.in.GroupOf(id)], entry{c.Triple, c.Q}, &sc.buf)
}

// addTo inserts e into g and returns the realized gain.
func (ev *Evaluator) addTo(g *group, e entry) float64 {
	old := g.revenue
	g.insert(e)
	g.revenue = groupRevenue(ev.in, g.entries)
	delta := g.revenue - old
	ev.total += delta
	ev.size++
	return delta
}

// Add inserts z into the strategy and returns the realized marginal gain.
// Adding a triple that is already present is a programming error and
// corrupts the total; callers guard with their own membership tracking.
func (ev *Evaluator) Add(z model.Triple, q float64) float64 {
	return ev.addTo(ev.groupAt(z.U, ev.in.Class(z.I), true), entry{z, q})
}

// AddID is Add addressed by candidate ID.
func (ev *Evaluator) AddID(id model.CandID) float64 {
	c := ev.in.CandAt(id)
	return ev.addTo(&ev.groups[ev.in.GroupOf(id)], entry{c.Triple, c.Q})
}

// removeFrom deletes z from g and returns the revenue change.
func (ev *Evaluator) removeFrom(g *group, z model.Triple) float64 {
	if g == nil || !g.remove(z) {
		return 0
	}
	old := g.revenue
	g.revenue = groupRevenue(ev.in, g.entries)
	delta := g.revenue - old
	ev.total += delta
	ev.size--
	return delta
}

// Remove deletes z from the strategy and returns the revenue change
// (usually negative of some earlier gain). It returns 0 and does nothing
// if z is not present.
func (ev *Evaluator) Remove(z model.Triple) float64 {
	return ev.removeFrom(ev.groupAt(z.U, ev.in.Class(z.I), false), z)
}

// RemoveID is Remove addressed by candidate ID.
func (ev *Evaluator) RemoveID(id model.CandID) float64 {
	c := ev.in.CandAt(id)
	return ev.removeFrom(&ev.groups[ev.in.GroupOf(id)], c.Triple)
}

// Revenue computes Rev(S) (Definition 2) for an explicit strategy from
// scratch. It is the reference implementation used to validate the
// incremental evaluator and to score algorithm outputs.
func Revenue(in *model.Instance, s *model.Strategy) float64 {
	groups := collectGroups(in, s)
	// Sum in sorted group order: float addition is not associative, so
	// map-order iteration would make the last bits of Rev(S) vary run to
	// run — enough to break byte-identical scenario reports.
	keys := make([]groupKey, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].u != keys[b].u {
			return keys[a].u < keys[b].u
		}
		return keys[a].c < keys[b].c
	})
	total := 0.0
	for _, key := range keys {
		total += groupRevenue(in, groups[key])
	}
	return total
}

// DynamicProb computes q_S(u,i,t) (Definition 1) for triple z under
// strategy s. Per the definition, it returns 0 when z ∉ S.
func DynamicProb(in *model.Instance, s *model.Strategy, z model.Triple) float64 {
	if !s.Contains(z) {
		return 0
	}
	groups := collectGroups(in, s)
	g := groups[groupKey{z.U, in.Class(z.I)}]
	for idx, e := range g {
		if e.z == z {
			return dynamicProb(in, g, idx)
		}
	}
	return 0
}

// MemoryOf computes M_S(u,i,t) (Eq. 1) for triple (u,i,t) under s.
func MemoryOf(in *model.Instance, s *model.Strategy, u model.UserID, i model.ItemID, t model.TimeStep) float64 {
	c := in.Class(i)
	m := 0.0
	for _, z := range s.Triples() {
		if z.U == u && in.Class(z.I) == c && z.T < t {
			m += 1 / float64(t-z.T)
		}
	}
	return m
}

// MarginalRevenue computes Rev(S ∪ {z}) − Rev(S) from scratch (Definition
// 3). Reference implementation for tests; algorithms use Evaluator.
func MarginalRevenue(in *model.Instance, s *model.Strategy, z model.Triple) float64 {
	s2 := s.Clone()
	s2.Add(z)
	return Revenue(in, s2) - Revenue(in, s)
}

func collectGroups(in *model.Instance, s *model.Strategy) map[groupKey][]entry {
	groups := make(map[groupKey][]entry)
	for _, z := range s.Triples() {
		key := groupKey{z.U, in.Class(z.I)}
		groups[key] = append(groups[key], entry{z, in.Q(z.U, z.I, z.T)})
	}
	for key, g := range groups {
		sort.Slice(g, func(a, b int) bool {
			if g[a].z.T != g[b].z.T {
				return g[a].z.T < g[b].z.T
			}
			return g[a].z.I < g[b].z.I
		})
		groups[key] = g
	}
	return groups
}

// CapacityOracle estimates B_S(i,t) = Pr[at most qᵢ−1 of the users other
// than u who were recommended i up to time t adopt it] (Definition 4).
// Implementations live in internal/poibin; the indirection keeps this
// package free of the estimation choice (exact DP vs Monte Carlo), exactly
// as the paper treats the oracle as pluggable.
type CapacityOracle interface {
	// TailAtMost returns Pr[at most k of independent Bernoulli trials with
	// the given success probabilities succeed].
	TailAtMost(probs []float64, k int) float64
}

// EffectiveRevenue computes the R-REVMAX objective: Definition 2 with
// q_S replaced by the effective dynamic adoption probability E_S of
// Definition 4. Each other user v contributes an adoption probability
// 1 − Π_{(v,i,τ)∈S, τ≤t}(1−q(v,i,τ)) to the Poisson-binomial tail; when a
// user was recommended the item only once this reduces to the primitive
// probability used in Example 3 of the paper.
func EffectiveRevenue(in *model.Instance, s *model.Strategy, oracle CapacityOracle) float64 {
	groups := collectGroups(in, s)
	// For every (item, user), the probability that the user adopts the
	// item when recommended at times τ ≤ t. We need per-time prefix data;
	// gather all recommendations of each item sorted by time.
	byItem := make(map[model.ItemID][]itemRec)
	for _, z := range s.Triples() {
		byItem[z.I] = append(byItem[z.I], itemRec{z.U, z.T, in.Q(z.U, z.I, z.T)})
	}
	for i := range byItem {
		rs := byItem[i]
		sort.Slice(rs, func(a, b int) bool { return rs[a].t < rs[b].t })
	}

	// Sum in sorted group order: float addition is not associative, so
	// map-order iteration would make the last bits vary run to run.
	keys := make([]groupKey, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].u != keys[b].u {
			return keys[a].u < keys[b].u
		}
		return keys[a].c < keys[b].c
	})
	total := 0.0
	for _, key := range keys {
		g := groups[key]
		for idx, e := range g {
			qs := dynamicProb(in, g, idx)
			if qs == 0 {
				continue
			}
			b := capacityFactor(in, byItem[e.z.I], key.u, e.z, oracle)
			total += in.Price(e.z.I, e.z.T) * qs * b
		}
	}
	return total
}

// itemRec is one recommendation of a fixed item: to whom, when, and with
// what primitive adoption probability.
type itemRec struct {
	u model.UserID
	t model.TimeStep
	q float64
}

// capacityFactor computes B_S(i,t) for the triple z=(u,i,t): the
// probability that at most qᵢ−1 of the *other* users recommended i up to
// time t adopt it. When fewer than qᵢ other users are involved the factor
// is exactly 1 (Definition 4 discussion).
func capacityFactor(in *model.Instance, recs []itemRec, u model.UserID, z model.Triple, oracle CapacityOracle) float64 {
	// Per other user: adoption probability 1 − Π(1−q) over recs at τ ≤ t.
	surv := make(map[model.UserID]float64)
	for _, r := range recs {
		if r.u == u || r.t > z.T {
			continue
		}
		if _, ok := surv[r.u]; !ok {
			surv[r.u] = 1
		}
		surv[r.u] *= 1 - r.q
	}
	capQ := in.Capacity(z.I)
	if len(surv) < capQ {
		return 1
	}
	// Feed the oracle in sorted user order: the Poisson-binomial DP (and
	// a Monte-Carlo oracle's draws) are order-sensitive at the last bit,
	// and map iteration order varies run to run.
	uids := make([]model.UserID, 0, len(surv))
	for u := range surv {
		uids = append(uids, u)
	}
	sort.Slice(uids, func(a, b int) bool { return uids[a] < uids[b] })
	probs := make([]float64, 0, len(surv))
	for _, u := range uids {
		probs = append(probs, 1-surv[u])
	}
	return oracle.TailAtMost(probs, capQ-1)
}
