package revenue_test

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/revenue"
	"repro/internal/testgen"
)

// TestMarginalGainIDScratchBitIdentical pins the scratch-arena path to
// the evaluator's built-in path, bit for bit, across evolving strategy
// states and arbitrary scratch reuse.
func TestMarginalGainIDScratchBitIdentical(t *testing.T) {
	in := testgen.Random(dist.NewRNG(21), testgen.Params{
		Users: 25, Items: 8, Classes: 3, T: 5, K: 2,
		MaxCap: 4, CandProb: 0.5, MinPrice: 1, MaxPrice: 60,
	})
	ev := revenue.NewEvaluator(in)
	rng := dist.NewRNG(4)
	var sc1, sc2 revenue.Scratch
	n := in.NumCands()
	added := make(map[model.CandID]bool)
	for step := 0; step < 400; step++ {
		id := model.CandID(rng.Intn(n))
		want := ev.MarginalGainID(id)
		if got := ev.MarginalGainIDScratch(id, &sc1); got != want {
			t.Fatalf("step %d: scratch gain %v != %v", step, got, want)
		}
		// A second, differently-warmed scratch must agree too.
		if got := ev.MarginalGainIDScratch(id, &sc2); got != want {
			t.Fatalf("step %d: scratch2 gain %v != %v", step, got, want)
		}
		if step%3 == 0 && !added[id] {
			ev.AddID(id)
			added[id] = true
		}
	}
}
