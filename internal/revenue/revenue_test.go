package revenue_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/poibin"
	"repro/internal/revenue"
	"repro/internal/testgen"
)

const tol = 1e-12

// paperExample1 builds the instance behind Example 1 of the paper: one
// user, two items i and j in the same class, adoption probability a for
// every triple, saturation factor beta on both items.
func paperExample1(a, beta float64) *model.Instance {
	in := model.NewInstance(1, 2, 3, 1)
	in.SetItem(0, 0, beta, 5) // item i
	in.SetItem(1, 0, beta, 5) // item j, same class
	for i := 0; i < 2; i++ {
		for t := 1; t <= 3; t++ {
			in.SetPrice(model.ItemID(i), model.TimeStep(t), 1)
			in.AddCandidate(0, model.ItemID(i), model.TimeStep(t), a)
		}
	}
	in.FinishCandidates()
	return in
}

func TestDynamicProbExample1(t *testing.T) {
	a, beta := 0.4, 0.6
	in := paperExample1(a, beta)
	s := model.StrategyOf(
		model.Triple{U: 0, I: 0, T: 1}, // (u, i, 1)
		model.Triple{U: 0, I: 1, T: 2}, // (u, j, 2)
		model.Triple{U: 0, I: 0, T: 3}, // (u, i, 3)
	)
	// qS(u,i,1) = a
	if got := revenue.DynamicProb(in, s, model.Triple{U: 0, I: 0, T: 1}); math.Abs(got-a) > tol {
		t.Fatalf("qS(u,i,1) = %v, want %v", got, a)
	}
	// qS(u,j,2) = (1−a)·a·β^(1/1)
	want2 := (1 - a) * a * math.Pow(beta, 1)
	if got := revenue.DynamicProb(in, s, model.Triple{U: 0, I: 1, T: 2}); math.Abs(got-want2) > tol {
		t.Fatalf("qS(u,j,2) = %v, want %v", got, want2)
	}
	// qS(u,i,3) = (1−a)²·a·β^(1/1 + 1/2)
	want3 := (1 - a) * (1 - a) * a * math.Pow(beta, 1.5)
	if got := revenue.DynamicProb(in, s, model.Triple{U: 0, I: 0, T: 3}); math.Abs(got-want3) > tol {
		t.Fatalf("qS(u,i,3) = %v, want %v", got, want3)
	}
}

func TestDynamicProbZeroOutsideStrategy(t *testing.T) {
	in := paperExample1(0.5, 0.5)
	s := model.StrategyOf(model.Triple{U: 0, I: 0, T: 1})
	if got := revenue.DynamicProb(in, s, model.Triple{U: 0, I: 0, T: 2}); got != 0 {
		t.Fatalf("qS of triple not in S = %v, want 0", got)
	}
}

// nonMonotoneInstance reproduces the instance from the proof of Theorem 2:
// U={u}, I={i}, T=2, k=1, qᵢ=2, q(u,i,1)=0.5, q(u,i,2)=0.6, p(i,1)=1,
// p(i,2)=0.95, βᵢ=0.1.
func nonMonotoneInstance() *model.Instance {
	in := model.NewInstance(1, 1, 2, 1)
	in.SetItem(0, 0, 0.1, 2)
	in.SetPrice(0, 1, 1)
	in.SetPrice(0, 2, 0.95)
	in.AddCandidate(0, 0, 1, 0.5)
	in.AddCandidate(0, 0, 2, 0.6)
	in.FinishCandidates()
	return in
}

func TestRevenueNonMonotoneExample(t *testing.T) {
	in := nonMonotoneInstance()
	s := model.StrategyOf(model.Triple{U: 0, I: 0, T: 2})
	s2 := model.StrategyOf(
		model.Triple{U: 0, I: 0, T: 1},
		model.Triple{U: 0, I: 0, T: 2},
	)
	rev1 := revenue.Revenue(in, s)
	rev2 := revenue.Revenue(in, s2)
	if math.Abs(rev1-0.57) > 1e-9 {
		t.Fatalf("Rev({(u,i,2)}) = %v, want 0.57", rev1)
	}
	if math.Abs(rev2-0.5285) > 1e-9 {
		t.Fatalf("Rev(S') = %v, want 0.5285", rev2)
	}
	if rev2 >= rev1 {
		t.Fatal("expected non-monotonicity: superset should have lower revenue")
	}
}

func TestRevenueEmptyStrategy(t *testing.T) {
	in := paperExample1(0.5, 0.5)
	if got := revenue.Revenue(in, model.NewStrategy()); got != 0 {
		t.Fatalf("Rev(∅) = %v", got)
	}
}

func TestMemoryOfMatchesEq1(t *testing.T) {
	in := paperExample1(0.5, 0.5)
	s := model.StrategyOf(
		model.Triple{U: 0, I: 0, T: 1},
		model.Triple{U: 0, I: 1, T: 2},
	)
	// M_S(u, i, 3) = 1/(3−1) + 1/(3−2) = 1.5 (class-wide memory).
	if got := revenue.MemoryOf(in, s, 0, 0, 3); math.Abs(got-1.5) > tol {
		t.Fatalf("memory = %v, want 1.5", got)
	}
	// Memory at t=1 is always 0.
	if got := revenue.MemoryOf(in, s, 0, 0, 1); got != 0 {
		t.Fatalf("memory at t=1 = %v, want 0", got)
	}
}

func TestEvaluatorMatchesReference(t *testing.T) {
	rng := dist.NewRNG(21)
	for trial := 0; trial < 25; trial++ {
		in := testgen.Random(rng, testgen.Default())
		ev := revenue.NewEvaluator(in)
		s := model.NewStrategy()
		for u := 0; u < in.NumUsers; u++ {
			for _, c := range in.UserCandidates(model.UserID(u)) {
				if rng.Float64() < 0.4 {
					ev.Add(c.Triple, c.Q)
					s.Add(c.Triple)
				}
			}
		}
		want := revenue.Revenue(in, s)
		if math.Abs(ev.Total()-want) > 1e-9 {
			t.Fatalf("trial %d: evaluator total %v != reference %v", trial, ev.Total(), want)
		}
	}
}

func TestEvaluatorAddRemoveRoundTrip(t *testing.T) {
	rng := dist.NewRNG(22)
	in := testgen.Random(rng, testgen.Default())
	ev := revenue.NewEvaluator(in)
	var added []model.Candidate
	for u := 0; u < in.NumUsers; u++ {
		for _, c := range in.UserCandidates(model.UserID(u)) {
			if rng.Float64() < 0.5 {
				ev.Add(c.Triple, c.Q)
				added = append(added, c)
			}
		}
	}
	for _, c := range added {
		ev.Remove(c.Triple)
	}
	if math.Abs(ev.Total()) > 1e-9 {
		t.Fatalf("total after removing everything = %v, want 0", ev.Total())
	}
	if ev.Len() != 0 {
		t.Fatalf("Len after removals = %d", ev.Len())
	}
}

func TestEvaluatorRemoveAbsentIsNoop(t *testing.T) {
	in := paperExample1(0.5, 0.5)
	ev := revenue.NewEvaluator(in)
	if d := ev.Remove(model.Triple{U: 0, I: 0, T: 1}); d != 0 {
		t.Fatalf("removing absent triple changed revenue by %v", d)
	}
}

func TestMarginalGainMatchesAdd(t *testing.T) {
	rng := dist.NewRNG(23)
	for trial := 0; trial < 25; trial++ {
		in := testgen.Random(rng, testgen.Default())
		ev := revenue.NewEvaluator(in)
		for u := 0; u < in.NumUsers; u++ {
			for _, c := range in.UserCandidates(model.UserID(u)) {
				if rng.Float64() < 0.4 {
					predicted := ev.MarginalGain(c.Triple, c.Q)
					realized := ev.Add(c.Triple, c.Q)
					if math.Abs(predicted-realized) > 1e-9 {
						t.Fatalf("MarginalGain %v != realized %v for %v", predicted, realized, c.Triple)
					}
				}
			}
		}
	}
}

func TestMarginalRevenueReferenceAgreement(t *testing.T) {
	rng := dist.NewRNG(24)
	in := testgen.Random(rng, testgen.Default())
	s := testgen.RandomStrategy(rng, in, 0.3)
	ev := revenue.NewEvaluator(in)
	for _, z := range s.Triples() {
		ev.Add(z, in.Q(z.U, z.I, z.T))
	}
	for u := 0; u < in.NumUsers; u++ {
		for _, c := range in.UserCandidates(model.UserID(u)) {
			if s.Contains(c.Triple) {
				continue
			}
			fast := ev.MarginalGain(c.Triple, c.Q)
			slow := revenue.MarginalRevenue(in, s, c.Triple)
			if math.Abs(fast-slow) > 1e-9 {
				t.Fatalf("marginal mismatch for %v: fast %v slow %v", c.Triple, fast, slow)
			}
		}
	}
}

// Lemma 1: q_S(u,i,t) is non-increasing in S.
func TestLemma1DynamicProbNonIncreasing(t *testing.T) {
	rng := dist.NewRNG(25)
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed uint16) bool {
		r := dist.NewRNG(uint64(seed)*7 + 1)
		in := testgen.Random(r, testgen.Default())
		small := testgen.RandomStrategy(rng, in, 0.25)
		big := small.Clone()
		// Grow big by extra random candidates.
		for u := 0; u < in.NumUsers; u++ {
			for _, c := range in.UserCandidates(model.UserID(u)) {
				if rng.Float64() < 0.25 {
					big.Add(c.Triple)
				}
			}
		}
		for _, z := range small.Triples() {
			qs := revenue.DynamicProb(in, small, z)
			qb := revenue.DynamicProb(in, big, z)
			if qb > qs+tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Theorem 2, Case 1 of the paper's proof: when z succeeds every
// same-(user, class) triple of S′, the marginal of z w.r.t. S ⊆ S′ is at
// least the marginal w.r.t. S′. This restricted direction of
// submodularity is correct and holds exactly (no loss terms arise; the
// gain shrinks by Lemma 1).
func TestTheorem2SubmodularityWhenSucceedingAll(t *testing.T) {
	rng := dist.NewRNG(26)
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed uint16) bool {
		r := dist.NewRNG(uint64(seed)*13 + 5)
		in := testgen.Random(r, testgen.Default())
		small := testgen.RandomStrategy(rng, in, 0.2)
		big := small.Clone()
		for u := 0; u < in.NumUsers; u++ {
			for _, c := range in.UserCandidates(model.UserID(u)) {
				if rng.Float64() < 0.2 {
					big.Add(c.Triple)
				}
			}
		}
		for u := 0; u < in.NumUsers; u++ {
			for _, c := range in.UserCandidates(model.UserID(u)) {
				if big.Contains(c.Triple) {
					continue
				}
				if !succeedsAllClassmates(in, big, c.Triple) {
					continue
				}
				mS := revenue.MarginalRevenue(in, small, c.Triple)
				mS2 := revenue.MarginalRevenue(in, big, c.Triple)
				if mS2 > mS+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// succeedsAllClassmates reports whether z's time step strictly exceeds
// that of every same-user same-class triple of s.
func succeedsAllClassmates(in *model.Instance, s *model.Strategy, z model.Triple) bool {
	c := in.Class(z.I)
	for _, w := range s.Triples() {
		if w.U == z.U && in.Class(w.I) == c && w.T >= z.T {
			return false
		}
	}
	return true
}

// Theorem 2 of the paper claims Rev is submodular in full generality.
// That claim is FALSE: the proof's Case 2 assumes the revenue loss caused
// by z grows with the strategy, but Lemma 1 shrinks each affected
// triple's dynamic probability — and with it the loss — on a superset.
// This test machine-checks the counterexample documented in DESIGN.md §6
// so the discrepancy with the paper stays visible.
func TestTheorem2SubmodularityCounterexample(t *testing.T) {
	// One user; items a, b, c in one class; β = 0.5; T = 3.
	in := model.NewInstance(1, 3, 3, 1)
	for i := 0; i < 3; i++ {
		in.SetItem(model.ItemID(i), 0, 0.5, 5)
	}
	in.SetPrice(0, 1, 1)           // p(a,1)
	in.SetPrice(1, 2, 0.001)       // p(b,2)
	in.SetPrice(2, 3, 100)         // p(c,3)
	in.AddCandidate(0, 0, 1, 0.5)  // z = (u,a,1)
	in.AddCandidate(0, 1, 2, 0.99) // w2 = (u,b,2)
	in.AddCandidate(0, 2, 3, 0.9)  // w1 = (u,c,3)
	in.FinishCandidates()

	z := model.Triple{U: 0, I: 0, T: 1}
	w1 := model.Triple{U: 0, I: 2, T: 3}
	w2 := model.Triple{U: 0, I: 1, T: 2}
	small := model.StrategyOf(w1)
	big := model.StrategyOf(w1, w2)

	mS := revenue.MarginalRevenue(in, small, z)
	mS2 := revenue.MarginalRevenue(in, big, z)
	if mS2 <= mS {
		t.Fatalf("expected submodularity violation, got mS=%v mS'=%v", mS, mS2)
	}
	// Pin the hand-computed magnitudes so the example stays honest.
	if math.Abs(mS-(-57.68)) > 0.05 {
		t.Fatalf("mS = %v, expected ≈ −57.68", mS)
	}
	if math.Abs(mS2-0.209) > 0.01 {
		t.Fatalf("mS' = %v, expected ≈ 0.209", mS2)
	}
}

// Dynamic probability never exceeds the primitive probability and stays
// in [0, 1].
func TestDynamicProbBounds(t *testing.T) {
	rng := dist.NewRNG(27)
	for trial := 0; trial < 30; trial++ {
		in := testgen.Random(rng, testgen.Default())
		s := testgen.RandomStrategy(rng, in, 0.5)
		for _, z := range s.Triples() {
			qs := revenue.DynamicProb(in, s, z)
			q := in.Q(z.U, z.I, z.T)
			if qs < -tol || qs > q+tol {
				t.Fatalf("qS(%v) = %v outside [0, q=%v]", z, qs, q)
			}
		}
	}
}

// Revenue is invariant to insertion order in the evaluator.
func TestEvaluatorOrderInvariance(t *testing.T) {
	rng := dist.NewRNG(28)
	in := testgen.Random(rng, testgen.Default())
	s := testgen.RandomStrategy(rng, in, 0.5)
	triples := s.Triples()

	forward := revenue.NewEvaluator(in)
	for _, z := range triples {
		forward.Add(z, in.Q(z.U, z.I, z.T))
	}
	backward := revenue.NewEvaluator(in)
	for i := len(triples) - 1; i >= 0; i-- {
		z := triples[i]
		backward.Add(z, in.Q(z.U, z.I, z.T))
	}
	if math.Abs(forward.Total()-backward.Total()) > 1e-9 {
		t.Fatalf("order dependence: %v vs %v", forward.Total(), backward.Total())
	}
}

// Example 3 of the paper: effective dynamic adoption probability with
// capacity pushed into the objective.
func TestEffectiveRevenueExample3(t *testing.T) {
	// One item i, three users u, v, w; k = 1; qᵢ = 1; βᵢ = 0.5.
	in := model.NewInstance(3, 1, 2, 1)
	in.SetItem(0, 0, 0.5, 1)
	qu, qv, qw1, qw2 := 0.3, 0.4, 0.2, 0.6
	in.SetPrice(0, 1, 1)
	in.SetPrice(0, 2, 1)
	in.AddCandidate(0, 0, 1, qu) // (u, i, 1)
	in.AddCandidate(1, 0, 2, qv) // (v, i, 2)
	in.AddCandidate(2, 0, 1, qw1)
	in.AddCandidate(2, 0, 2, qw2)
	in.FinishCandidates()

	s := model.StrategyOf(
		model.Triple{U: 0, I: 0, T: 1},
		model.Triple{U: 1, I: 0, T: 2},
		model.Triple{U: 2, I: 0, T: 1},
		model.Triple{U: 2, I: 0, T: 2},
	)
	oracle := poibin.ExactOracle{}
	got := revenue.EffectiveRevenue(in, s, oracle)

	// Hand-computed per Definition 4 with the exact Poisson-binomial tail.
	// E(u,i,1): others up to t=1: {w}. B = Pr[0 of {qw1} adopt] = 1−qw1.
	eu := qu * (1 - qw1)
	// E(w,i,1): others up to t=1: {u}. B = 1−qu.
	ew1 := qw1 * (1 - qu)
	// E(v,i,2): others up to t=2: {u}, {w with both recs}. w's adoption
	// prob = 1−(1−qw1)(1−qw2). B = (1−qu)·(1−qw)
	wAdopt := 1 - (1-qw1)*(1-qw2)
	evv := qv * (1 - qu) * (1 - wAdopt)
	// E(w,i,2) = qw2·(1−qw1)·β^(1/1)·B, B = (1−qu)(1−qv) — Example 3.
	ew2 := qw2 * (1 - qw1) * math.Pow(0.5, 1) * (1 - qu) * (1 - qv)

	want := eu + ew1 + evv + ew2
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("EffectiveRevenue = %v, want %v", got, want)
	}
}

func TestEffectiveRevenueReducesToRevenueUnderSlackCapacity(t *testing.T) {
	// With capacities larger than the user count, B_S ≡ 1 and the
	// effective revenue equals the plain revenue.
	rng := dist.NewRNG(29)
	p := testgen.Default()
	p.MaxCap = 50
	for trial := 0; trial < 10; trial++ {
		in := testgen.Random(rng, p)
		relaxed := true
		for i := 0; i < in.NumItems(); i++ {
			if in.Capacity(model.ItemID(i)) <= in.NumUsers {
				relaxed = false
			}
		}
		if !relaxed {
			continue
		}
		s := testgen.RandomStrategy(rng, in, 0.4)
		plain := revenue.Revenue(in, s)
		eff := revenue.EffectiveRevenue(in, s, poibin.ExactOracle{})
		if math.Abs(plain-eff) > 1e-9 {
			t.Fatalf("trial %d: effective %v != plain %v with slack capacity", trial, eff, plain)
		}
	}
}

func TestEffectiveRevenueAtMostPlainRevenue(t *testing.T) {
	rng := dist.NewRNG(30)
	for trial := 0; trial < 20; trial++ {
		in := testgen.Random(rng, testgen.Default())
		s := testgen.RandomStrategy(rng, in, 0.5)
		plain := revenue.Revenue(in, s)
		eff := revenue.EffectiveRevenue(in, s, poibin.ExactOracle{})
		if eff > plain+1e-9 {
			t.Fatalf("effective revenue %v exceeds plain %v", eff, plain)
		}
	}
}

func TestGroupSize(t *testing.T) {
	in := paperExample1(0.5, 0.5)
	ev := revenue.NewEvaluator(in)
	if ev.GroupSize(0, 0) != 0 {
		t.Fatal("empty group size != 0")
	}
	ev.Add(model.Triple{U: 0, I: 0, T: 1}, 0.5)
	ev.Add(model.Triple{U: 0, I: 1, T: 2}, 0.5) // same class
	if got := ev.GroupSize(0, 0); got != 2 {
		t.Fatalf("group size = %d, want 2", got)
	}
}
