package revmax

import (
	"repro/internal/inventory"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/priceopt"
)

// Receding-horizon planning facade — execute a horizon step by step,
// fold realized adoptions back into the model, replan the rest.
type (
	// Planner executes a horizon with adoption feedback.
	Planner = planner.Planner
	// PlannerAlgorithm plans a strategy for a (residual) instance.
	PlannerAlgorithm = planner.Algorithm
	// Recommendation is one issued recommendation with its conditional
	// adoption probability.
	Recommendation = planner.Recommendation
	// RolloutResult summarizes a simulated closed-loop deployment.
	RolloutResult = planner.RolloutResult
)

// NewPlanner returns a receding-horizon planner over in; algo is invoked
// on the residual instance before every step (GGreedyPlanner is the
// usual choice).
func NewPlanner(in *Instance, algo PlannerAlgorithm) *Planner {
	return planner.New(in, algo)
}

// NewNamedPlanner returns a receding-horizon planner over in whose
// replanning algorithm is resolved from the solver registry:
// opts.Algorithm names it, the remaining options tune it. An unknown
// name fails here, not mid-replan.
func NewNamedPlanner(in *Instance, opts Options) (*Planner, error) {
	return planner.NewNamed(in, opts)
}

// GGreedyPlanner adapts GGreedy to the planner's Algorithm signature.
//
// Deprecated: name the algorithm instead — NewNamedPlanner(in,
// Options{Algorithm: "g-greedy"}) or ServeConfig{Algorithm:
// "g-greedy"} — which keeps configurations declarative.
func GGreedyPlanner(in *Instance) *Strategy { return GGreedy(in).Strategy }

// Metrics facade — descriptive statistics of a strategy.
type (
	// MetricsReport profiles a strategy (repeats, utilization, coverage,
	// diversity, revenue).
	MetricsReport = metrics.Report
)

// ProfileStrategy computes the metrics report for s on in.
func ProfileStrategy(in *Instance, s *Strategy) MetricsReport {
	return metrics.Profile(in, s)
}

// Inventory facade — capacity setting from demand forecasts (§3.1's
// "determined based on current inventory level and demand forecasting").

// NewsvendorCapacity returns the smallest qᵢ meeting the service level
// against a Poisson-binomial demand forecast.
func NewsvendorCapacity(adoptionProbs []float64, serviceLevel float64) (int, error) {
	return inventory.Newsvendor(adoptionProbs, serviceLevel)
}

// OverbookCapacity scales physical stock by expected conversion.
func OverbookCapacity(stock int, adoptionProbs []float64) (int, error) {
	return inventory.Overbook(stock, adoptionProbs)
}

// StockoutProbability returns Pr[demand > capacity] for a forecast.
func StockoutProbability(adoptionProbs []float64, capacity int) float64 {
	return inventory.StockoutProbability(adoptionProbs, capacity)
}

// Price optimization facade — the §8 future-work inverse problem: choose
// per-item price multipliers from a menu, anticipating optimal
// replanning by the recommender.

// PriceOptimize runs coordinate ascent over items: reprice builds the
// instance induced by a multiplier vector, plan scores it (e.g.
// func(in *Instance) float64 { return GGreedy(in).Revenue }).
func PriceOptimize(numItems int, reprice func([]float64) *Instance, plan func(*Instance) float64, menu []float64) (PriceOptResult, error) {
	return priceopt.Optimize(numItems,
		func(ms []float64) *model.Instance { return reprice(ms) },
		func(in *model.Instance) float64 { return plan(in) },
		priceopt.Options{Menu: menu})
}

// PriceOptResult reports chosen multipliers and achieved revenue.
type PriceOptResult = priceopt.Result
