// Benchmarks for the flat candidate-indexed plan representation and
// incremental warm-start replanning, plus the BENCH_plan.json CI
// artifact comparing the old map-based representation against the new
// flat one on the same workloads.
package revmax_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/testgen"
)

// legacyCheckValid is the pre-flat-index implementation of
// Instance.CheckValid, kept here verbatim as the "old" side of the
// old-vs-new comparison (the live implementation now runs on dense
// CandID counters with pooled scratch).
func legacyCheckValid(in *model.Instance, triples []model.Triple) error {
	display := make(map[[2]int32]int)
	users := make(map[model.ItemID]map[model.UserID]struct{})
	for _, z := range triples {
		key := [2]int32{int32(z.U), int32(z.T)}
		display[key]++
		if display[key] > in.K {
			return fmt.Errorf("display limit exceeded at %v", z)
		}
		m := users[z.I]
		if m == nil {
			m = make(map[model.UserID]struct{})
			users[z.I] = m
		}
		m[z.U] = struct{}{}
		if len(m) > in.Capacity(z.I) {
			return fmt.Errorf("capacity exceeded at %v", z)
		}
	}
	return nil
}

// planOpsFixture: a solved plan plus its strategy view and triple list,
// the shared workload for representation benchmarks.
type planOpsFixture struct {
	in      *model.Instance
	plan    *model.Plan
	strat   *model.Strategy
	triples []model.Triple
	ids     []model.CandID
}

func newPlanOpsFixture(tb testing.TB) *planOpsFixture {
	tb.Helper()
	ds := benchDataset(tb)
	res := core.GGreedy(ds.Instance)
	if res.Plan == nil || res.Plan.Len() == 0 {
		tb.Fatal("solve produced no plan")
	}
	f := &planOpsFixture{
		in:      ds.Instance,
		plan:    res.Plan,
		strat:   res.Strategy,
		triples: res.Strategy.Triples(),
	}
	f.plan.Each(func(id model.CandID) bool {
		f.ids = append(f.ids, id)
		return true
	})
	return f
}

// BenchmarkPlanOps compares the hot-path set operations of the flat
// Plan against the map-based Strategy: membership, add/remove churn,
// and full validation.
func BenchmarkPlanOps(b *testing.B) {
	f := newPlanOpsFixture(b)
	n := len(f.ids)

	b.Run("contains/plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !f.plan.Contains(f.ids[i%n]) {
				b.Fatal("missing id")
			}
		}
	})
	b.Run("contains/strategy-map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !f.strat.Contains(f.triples[i%n]) {
				b.Fatal("missing triple")
			}
		}
	})
	b.Run("add-remove/plan", func(b *testing.B) {
		p := f.in.NewPlan()
		for i := 0; i < b.N; i++ {
			id := f.ids[i%n]
			p.Add(id)
			p.Remove(id)
		}
	})
	b.Run("add-remove/strategy-map", func(b *testing.B) {
		s := model.NewStrategy()
		for i := 0; i < b.N; i++ {
			z := f.triples[i%n]
			s.Add(z)
			s.Remove(z)
		}
	})
	b.Run("checkvalid/flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := f.in.CheckValid(f.strat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("checkvalid/legacy-maps", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := legacyCheckValid(f.in, f.triples); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("valid/plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := f.plan.Valid(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// warmReplanFixture builds the receding-horizon workload: a planned
// horizon, one batch of adoption/stock feedback, and the residual
// instance the replanner must solve.
type warmReplanFixture struct {
	in       *model.Instance
	fb       planner.Feedback
	residual *model.Instance
	seeds    []model.Triple
}

func newWarmReplanFixture(tb testing.TB) *warmReplanFixture {
	tb.Helper()
	// Closed-loop archetype shape: many users, tight display budget —
	// the workload the serving engine replans under (larger than the
	// micro-bench dataset so the solve is selection-bound, as at scale).
	in := testgen.Random(dist.NewRNG(3), testgen.Params{
		Users: 800, Items: 60, Classes: 12, T: 6, K: 2,
		MaxCap: 8, CandProb: 0.15, MinPrice: 5, MaxPrice: 90,
	})
	if err := in.Validate(); err != nil {
		tb.Fatal(err)
	}
	cold := core.GGreedy(in)
	seeds := cold.Strategy.Triples()
	if len(seeds) == 0 {
		tb.Fatal("cold solve selected nothing")
	}

	// Feedback batch: every 20th planned user adopted their first
	// planned item's class; one item lost its stock.
	fb := planner.Feedback{
		AdoptedClass: map[model.UserID]map[model.ClassID]bool{},
		Exposures:    map[model.UserID]map[model.ClassID][]model.TimeStep{},
		Stock:        make([]int, in.NumItems()),
		Now:          2,
	}
	for i := range fb.Stock {
		fb.Stock[i] = in.Capacity(model.ItemID(i))
	}
	for k, z := range seeds {
		if k%20 == 0 {
			if fb.AdoptedClass[z.U] == nil {
				fb.AdoptedClass[z.U] = map[model.ClassID]bool{}
			}
			fb.AdoptedClass[z.U][in.Class(z.I)] = true
		}
	}
	fb.Stock[seeds[0].I] = 0
	return &warmReplanFixture{
		in:       in,
		fb:       fb,
		residual: planner.Residual(in, fb),
		seeds:    seeds,
	}
}

// incrStreamEvent is the j-th exposure of the deterministic event
// stream the incremental-replan benchmarks feed: a non-adopting
// observation, the steady-state event class of a serving engine (it
// invalidates the observed group's future saturation discounts without
// consuming stock, so the workload never degenerates over b.N).
func incrStreamEvent(in *model.Instance, j int) (model.UserID, model.ItemID, model.TimeStep) {
	u := model.UserID((j * 131) % in.NumUsers)
	i := model.ItemID((j * 17) % in.NumItems())
	t := model.TimeStep(2 + j%(in.T-1))
	return u, i, t
}

// newBenchSession builds the persistent-session side of the replan
// comparison: bootstrapped from the fixture's feedback batch, seeded
// with the previous plan, and primed with one solve so every timed
// replan starts from steady state.
func newBenchSession(tb testing.TB, f *warmReplanFixture) *core.Session {
	tb.Helper()
	sess := core.NewSession(f.in, core.SessionConfig{Seeded: true, MaxExposures: 64})
	planner.SyncSession(sess, f.fb)
	sess.SeedTriples(f.seeds)
	if sess.Solve().Strategy.Len() == 0 {
		tb.Fatal("empty session prime solve")
	}
	return sess
}

// mirrorExposure applies incrStreamEvent(j) to a Feedback view the way
// the serving engine's exposure history does (append, capped at 64
// with drop-oldest) — the full-rebuild baseline's side of the stream.
func mirrorExposure(fb *planner.Feedback, in *model.Instance, j int) {
	u, i, t := incrStreamEvent(in, j)
	c := in.Class(i)
	m := fb.Exposures[u]
	if m == nil {
		m = map[model.ClassID][]model.TimeStep{}
		fb.Exposures[u] = m
	}
	ts := append(m[c], t)
	if len(ts) > 64 {
		ts = ts[1:]
	}
	m[c] = ts
}

// BenchmarkWarmReplan measures one receding-horizon replan solved cold
// (from scratch) versus warm-started from the previous plan — the p99
// lever for the serving engine's background replans.
func BenchmarkWarmReplan(b *testing.B) {
	f := newWarmReplanFixture(b)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := core.GGreedy(f.residual)
			if res.Strategy.Len() == 0 {
				b.Fatal("empty replan")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := core.GGreedyWarm(f.residual, f.seeds)
			if res.Strategy.Len() == 0 {
				b.Fatal("empty replan")
			}
		}
	})
}

// BenchmarkIncrementalReplan sweeps events-per-replan on the
// persistent solver session: each iteration journals N exposure events
// (untimed — invalidation runs eagerly on the event path, where the
// serving layer absorbs it at feed time) and then replans, so the
// measured cost is the barrier Solve alone: deferred capacity sync,
// seeded re-validation, restoring the few invalidated heap pairs, and
// the lazy-forward scan — the serving engine's steady-state replan
// latency under Config.Incremental. The warm-full case is the PR-5-era
// baseline on the identical event stream: rebuild the residual instance
// from the full feedback view, then warm-start solve.
func BenchmarkIncrementalReplan(b *testing.B) {
	for _, ev := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("events-%d", ev), func(b *testing.B) {
			f := newWarmReplanFixture(b)
			sess := newBenchSession(b, f)
			j := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for k := 0; k < ev; k++ {
					u, it, t := incrStreamEvent(f.in, j)
					sess.Observe(u, it, t, false)
					j++
				}
				b.StartTimer()
				if sess.Solve().Strategy.Len() == 0 {
					b.Fatal("empty replan")
				}
			}
		})
	}
	b.Run("warm-full-16ev", func(b *testing.B) {
		f := newWarmReplanFixture(b)
		prev := f.seeds
		j := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < 16; k++ {
				mirrorExposure(&f.fb, f.in, j)
				j++
			}
			res := core.GGreedyWarm(planner.Residual(f.in, f.fb), prev)
			if res.Strategy.Len() == 0 {
				b.Fatal("empty replan")
			}
			prev = res.Strategy.Triples()
		}
	})
}

// TestIncrementalReplanTouchesFewCandidates is the invalidation
// sparseness gate: on the selection-bound replan workload, a replan
// covering a single journaled event must recompute upper bounds for
// fewer than 5% of the candidate space. A regression here means the
// event→CandID fan-out through the inverted indexes got too coarse —
// the incremental path would still be correct, but no longer
// incremental.
func TestIncrementalReplanTouchesFewCandidates(t *testing.T) {
	f := newWarmReplanFixture(t)
	sess := newBenchSession(t, f)
	for j := 0; j < 32; j++ {
		u, it, ts := incrStreamEvent(f.in, j)
		sess.Observe(u, it, ts, false)
		if sess.Solve().Strategy.Len() == 0 {
			t.Fatal("empty replan")
		}
		st := sess.LastStats()
		if frac := float64(st.DirtyCands) / float64(st.NumCands); frac >= 0.05 {
			t.Fatalf("1-event replan %d touched %d/%d candidates (%.2f%%, want < 5%%)",
				j, st.DirtyCands, st.NumCands, 100*frac)
		}
	}
}

// parallelSolveInstance is the selection-bound workload for the
// sequential-vs-parallel solve comparison: enough users that the
// partitioned scan has real spans to cut, enough candidates that the
// lazy-forward selection loop dominates the build phase.
func parallelSolveInstance(tb testing.TB) *model.Instance {
	tb.Helper()
	in := testgen.Random(dist.NewRNG(7), testgen.Params{
		Users: 400, Items: 60, Classes: 6, T: 8, K: 3,
		MaxCap: 30, CandProb: 0.3, MinPrice: 1, MaxPrice: 100,
	})
	if err := in.Validate(); err != nil {
		tb.Fatal(err)
	}
	return in
}

// BenchmarkGGreedyParallel sweeps the worker count on the same
// instance; workers=1 is the sequential in-line fallback, so the sweep
// is the parallel scan's overhead/speedup curve. Output is
// byte-identical at every point — only wall clock may differ.
func BenchmarkGGreedyParallel(b *testing.B) {
	in := parallelSolveInstance(b)
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.GGreedy(in)
		}
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.GGreedyParallel(in, w)
			}
		})
	}
}

// BenchmarkPlanWordOps compares the word-at-a-time Plan kernels against
// their scalar per-candidate equivalents on a solved plan.
func BenchmarkPlanWordOps(b *testing.B) {
	f := newPlanOpsFixture(b)
	n := model.CandID(f.in.NumCands())
	b.Run("count-range/words", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if f.plan.CountRange(0, n) != f.plan.Len() {
				b.Fatal("count mismatch")
			}
		}
	})
	b.Run("count-range/scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			count := 0
			for id := model.CandID(0); id < n; id++ {
				if f.plan.Contains(id) {
					count++
				}
			}
			if count != f.plan.Len() {
				b.Fatal("count mismatch")
			}
		}
	})
	b.Run("distinct-recipients/words", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.plan.DistinctRecipients(f.triples[i%len(f.triples)].I)
		}
	})
	b.Run("upper-bound-keys/kernel", func(b *testing.B) {
		dst := make([]float64, n)
		for i := 0; i < b.N; i++ {
			f.in.UpperBoundKeys(0, n, dst)
		}
	})
}

// TestPlanBenchReport, gated on BENCH_PLAN_OUT, measures the
// representation and replanning workloads with testing.Benchmark and
// writes BENCH_plan.json — the CI artifact for the planning-path bench
// trajectory — plus an old-vs-new comparison table in the job log.
func TestPlanBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_PLAN_OUT")
	if out == "" {
		t.Skip("set BENCH_PLAN_OUT=<path> to write the plan benchmark report")
	}
	f := newPlanOpsFixture(t)
	wf := newWarmReplanFixture(t)
	n := len(f.ids)

	measure := func(fn func(i int)) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn(i)
			}
		})
		return float64(r.NsPerOp())
	}

	containsPlan := measure(func(i int) { f.plan.Contains(f.ids[i%n]) })
	containsMap := measure(func(i int) { f.strat.Contains(f.triples[i%n]) })
	scratch := f.in.NewPlan()
	scratchStrat := model.NewStrategy()
	addRemovePlan := measure(func(i int) { scratch.Add(f.ids[i%n]); scratch.Remove(f.ids[i%n]) })
	addRemoveMap := measure(func(i int) { scratchStrat.Add(f.triples[i%n]); scratchStrat.Remove(f.triples[i%n]) })
	checkFlat := measure(func(i int) { _ = f.in.CheckValid(f.strat) })
	checkLegacy := measure(func(i int) { _ = legacyCheckValid(f.in, f.triples) })
	replanCold := measure(func(i int) { core.GGreedy(wf.residual) })
	replanWarm := measure(func(i int) { core.GGreedyWarm(wf.residual, wf.seeds) })
	solveCold := measure(func(i int) { core.GGreedy(f.in) })

	n64 := model.CandID(f.in.NumCands())
	countWords := measure(func(i int) { f.plan.CountRange(0, n64) })
	countScalar := measure(func(i int) {
		count := 0
		for id := model.CandID(0); id < n64; id++ {
			if f.plan.Contains(id) {
				count++
			}
		}
		_ = count
	})

	// Incremental-session replans: sweep events-per-replan and record
	// the replan (Solve) latency plus the dirty-candidate count of the
	// last replan (the stream is steady-state, so the last replan is
	// representative). Event journaling is untimed: invalidation runs
	// eagerly as each event is applied, on the feed path — its per-event
	// cost is reported separately as event_observe_ns. The warm-full
	// baseline replays the identical 16-event stream through the
	// PR-5-era path: full residual rebuild + warm solve.
	type incrPoint struct {
		ns    float64
		dirty int
	}
	incrPoints := map[int]incrPoint{}
	sessionCands := 0
	for _, ev := range []int{1, 16, 256} {
		ifx := newWarmReplanFixture(t)
		sess := newBenchSession(t, ifx)
		j := 0
		step := func() {
			for k := 0; k < ev; k++ {
				u, it, ts := incrStreamEvent(ifx.in, j)
				sess.Observe(u, it, ts, false)
				j++
			}
		}
		const warmup, iters = 30, 300
		for i := 0; i < warmup; i++ {
			step()
			sess.Solve()
		}
		var total time.Duration
		for i := 0; i < iters; i++ {
			step()
			t0 := time.Now()
			sess.Solve()
			total += time.Since(t0)
		}
		st := sess.LastStats()
		incrPoints[ev] = incrPoint{ns: float64(total.Nanoseconds()) / iters, dirty: st.DirtyCands}
		sessionCands = st.NumCands
	}
	efx := newWarmReplanFixture(t)
	esess := newBenchSession(t, efx)
	ej := 0
	eventObserve := measure(func(i int) {
		u, it, ts := incrStreamEvent(efx.in, ej)
		esess.Observe(u, it, ts, false)
		ej++
	})
	wifx := newWarmReplanFixture(t)
	warmPrev := wifx.seeds
	wj := 0
	replanWarmFull := measure(func(i int) {
		for k := 0; k < 16; k++ {
			mirrorExposure(&wifx.fb, wifx.in, wj)
			wj++
		}
		res := core.GGreedyWarm(planner.Residual(wifx.in, wifx.fb), warmPrev)
		warmPrev = res.Strategy.Triples()
	})
	// Fail the step, not just the report, when invalidation loses its
	// sparseness or the sweep loses its flatness: a 1-event replan must
	// touch < 5% of the candidate space, and latency must stay within
	// 1.3x from 1 to 256 events per replan.
	if frac := float64(incrPoints[1].dirty) / float64(sessionCands); frac >= 0.05 {
		t.Errorf("1-event incremental replan touched %d/%d candidates (%.2f%%, want < 5%%)",
			incrPoints[1].dirty, sessionCands, 100*frac)
	}
	if ratio := incrPoints[256].ns / incrPoints[1].ns; ratio > 1.3 {
		t.Errorf("incremental replan latency grew %.2fx from 1 to 256 events per replan (want ≤ 1.3x)", ratio)
	}

	// Sequential vs parallel solve on the selection-bound instance. The
	// parallel scan is byte-identical to the sequential one at every
	// worker count, so this table is pure wall clock; cpus records how
	// many cores the host actually had — worker counts beyond it measure
	// scheduling overhead, not parallelism.
	pin := parallelSolveInstance(t)
	solveSeq := measure(func(i int) { core.GGreedy(pin) })
	parallelNs := map[string]float64{}
	workerCounts := []int{1, 2, 4, 8}
	for _, w := range workerCounts {
		parallelNs[fmt.Sprintf("solve_parallel_%dw_ns", w)] = measure(func(i int) { core.GGreedyParallel(pin, w) })
	}

	type row struct {
		name         string
		oldNs, newNs float64
	}
	rows := []row{
		{"contains (map triple → plan bitset)", containsMap, containsPlan},
		{"add+remove (map → plan counters)", addRemoveMap, addRemovePlan},
		{"CheckValid (fresh maps → pooled dense)", checkLegacy, checkFlat},
		{"replan (cold solve → warm-start)", replanCold, replanWarm},
		{"replan (warm full-rebuild → incremental session)", replanWarmFull, incrPoints[16].ns},
		{"count selected (scalar loop → word popcount)", countScalar, countWords},
	}
	t.Log("old-vs-new (flat plan representation):")
	for _, r := range rows {
		t.Logf("  %-46s %10.0f ns → %10.0f ns (%.2fx)", r.name, r.oldNs, r.newNs, r.oldNs/r.newNs)
	}
	t.Logf("incremental session replan sweep (cands=%d):", sessionCands)
	for _, ev := range []int{1, 16, 256} {
		p := incrPoints[ev]
		t.Logf("  %-14s %12.0f ns  dirty=%d (%.2f%%)",
			fmt.Sprintf("events=%d", ev), p.ns, p.dirty, 100*float64(p.dirty)/float64(sessionCands))
	}
	t.Logf("  %-14s %12.0f ns  (incr 16ev: %.2fx faster)", "warm-full-16ev", replanWarmFull, replanWarmFull/incrPoints[16].ns)
	t.Logf("  %-14s %12.0f ns  (eager invalidation, paid per event on the feed path)", "observe-event", eventObserve)
	t.Logf("sequential-vs-parallel G-Greedy (cands=%d, cpus=%d):", pin.NumCands(), runtime.NumCPU())
	t.Logf("  %-14s %12.0f ns", "sequential", solveSeq)
	for _, w := range workerCounts {
		ns := parallelNs[fmt.Sprintf("solve_parallel_%dw_ns", w)]
		t.Logf("  %-14s %12.0f ns (%.2fx vs sequential)", fmt.Sprintf("workers=%d", w), ns, solveSeq/ns)
	}

	report := map[string]any{
		"benchmark":                "PlanRepresentation",
		"candidates":               f.in.NumCands(),
		"planned_triples":          len(f.ids),
		"contains_plan_ns":         containsPlan,
		"contains_map_ns":          containsMap,
		"add_remove_plan_ns":       addRemovePlan,
		"add_remove_map_ns":        addRemoveMap,
		"checkvalid_flat_ns":       checkFlat,
		"checkvalid_legacy_ns":     checkLegacy,
		"replan_cold_ns":           replanCold,
		"replan_warm_ns":           replanWarm,
		"replan_speedup":           replanCold / replanWarm,
		"replan_incr_1ev_ns":       incrPoints[1].ns,
		"replan_incr_16ev_ns":      incrPoints[16].ns,
		"replan_incr_256ev_ns":     incrPoints[256].ns,
		"replan_warm_full_ns":      replanWarmFull,
		"event_observe_ns":         eventObserve,
		"incr_vs_warm_speedup":     replanWarmFull / incrPoints[16].ns,
		"incr_latency_ratio_256v1": incrPoints[256].ns / incrPoints[1].ns,
		"dirty_cands_1ev":          incrPoints[1].dirty,
		"dirty_cands_16ev":         incrPoints[16].dirty,
		"dirty_cands_256ev":        incrPoints[256].dirty,
		"session_num_cands":        sessionCands,
		"ggreedy_solve_ns":         solveCold,
		"count_words_ns":           countWords,
		"count_scalar_ns":          countScalar,
		"count_words_speedup":      countScalar / countWords,
		"cpus":                     runtime.NumCPU(),
		"solve_seq_ns":             solveSeq,
		"parallel_speedup_8w":      solveSeq / parallelNs["solve_parallel_8w_ns"],
	}
	for k, v := range parallelNs {
		report[k] = v
	}
	fh, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	enc := json.NewEncoder(fh)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
