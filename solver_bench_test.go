package revmax_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	revmax "repro"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/testgen"
)

// dispatchInstance is a small, fixed instance: the solve itself is a
// few microseconds, so any registry-dispatch overhead (lookup, options
// defaulting, progress wrapping) would show up clearly.
func dispatchInstance(tb testing.TB) *model.Instance {
	tb.Helper()
	in := testgen.Random(dist.NewRNG(42), testgen.Params{
		Users: 20, Items: 8, Classes: 3, T: 4, K: 2,
		MaxCap: 4, CandProb: 0.4, MinPrice: 5, MaxPrice: 80,
	})
	if err := in.Validate(); err != nil {
		tb.Fatal(err)
	}
	return in
}

// BenchmarkSolveDispatch compares registry dispatch against the direct
// core call for the same algorithm — the overhead budget of the
// unified API. CI runs both and publishes BENCH_solver.json; the
// difference must be within noise.
func BenchmarkSolveDispatch(b *testing.B) {
	in := dispatchInstance(b)
	ctx := context.Background()
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := core.GGreedy(in)
			if res.Strategy.Len() == 0 {
				b.Fatal("empty strategy")
			}
		}
	})
	b.Run("registry", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := revmax.Solve(ctx, in, revmax.Options{Algorithm: "g-greedy"})
			if err != nil || res.Strategy.Len() == 0 {
				b.Fatalf("err=%v len=%d", err, res.Strategy.Len())
			}
		}
	})
}

// TestSolveDispatchReport, gated on BENCH_SOLVER_OUT, measures both
// paths with testing.Benchmark and writes the comparison as JSON — the
// BENCH_solver.json CI artifact proving registry overhead stays within
// noise of a direct call.
func TestSolveDispatchReport(t *testing.T) {
	out := os.Getenv("BENCH_SOLVER_OUT")
	if out == "" {
		t.Skip("set BENCH_SOLVER_OUT=<path> to write the dispatch-overhead report")
	}
	in := dispatchInstance(t)
	ctx := context.Background()

	direct := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.GGreedy(in)
		}
	})
	registry := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := revmax.Solve(ctx, in, revmax.Options{Algorithm: "g-greedy"}); err != nil {
				b.Fatal(err)
			}
		}
	})

	directNs := float64(direct.NsPerOp())
	registryNs := float64(registry.NsPerOp())
	report := map[string]any{
		"benchmark":        "SolveDispatch",
		"algorithm":        "g-greedy",
		"direct_ns_op":     directNs,
		"registry_ns_op":   registryNs,
		"overhead_pct":     100 * (registryNs - directNs) / directNs,
		"direct_iters":     direct.N,
		"registry_iters":   registry.N,
		"registered_algos": revmax.List(),
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("direct %.0f ns/op, registry %.0f ns/op (%.2f%% overhead) → %s",
		directNs, registryNs, 100*(registryNs-directNs)/directNs, out)
}
