package revmax_test

import (
	"fmt"

	revmax "repro"
)

// ExampleCluster serves the ExampleSolve catalog from a 2-shard
// cluster: users are striped across shard engines, recommendations
// route to the owning shard, and adoptions draw down the cross-shard
// stock ledger the coordinator reconciles at flush barriers. The
// answers are byte-identical to a single engine on the same instance.
func ExampleCluster() {
	in := revmax.NewInstance(2, 2, 1, 1) // 2 users, 2 items, T=1, k=1
	in.SetItem(0, 0, 1, 2)               // item 0: class 0, no saturation, capacity 2
	in.SetItem(1, 1, 1, 2)
	in.SetPrice(0, 1, 40)
	in.SetPrice(1, 1, 10)
	in.AddCandidate(0, 0, 1, 0.5)
	in.AddCandidate(0, 1, 1, 0.9)
	in.AddCandidate(1, 1, 1, 0.25)
	in.FinishCandidates()

	cl, err := revmax.NewCluster(in, revmax.ClusterConfig{Shards: 2})
	if err != nil {
		panic(err)
	}
	defer cl.Close()

	for u := 0; u < 2; u++ {
		recs, err := cl.Recommend(revmax.UserID(u), 1)
		if err != nil {
			panic(err)
		}
		for _, rec := range recs {
			fmt.Printf("user %d: item %d at price %.0f (p=%.2f)\n", u, rec.Item, rec.Price, rec.Prob)
		}
	}

	// User 0 adopts item 0; the flush barrier reconciles the shard's
	// optimistic reservation against the coordinator's ledger.
	if err := cl.Feed(revmax.ServeEvent{User: 0, Item: 0, T: 1, Adopted: true}); err != nil {
		panic(err)
	}
	cl.Flush()
	n, err := cl.Stock(0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("item 0 stock after adoption: %d\n", n)
	// Output:
	// user 0: item 0 at price 40 (p=0.50)
	// user 1: item 1 at price 10 (p=0.25)
	// item 0 stock after adoption: 1
}
