package revmax_test

import (
	"bytes"
	"math"
	"testing"

	revmax "repro"
	"repro/internal/dist"
)

func TestFacadePlannerRollout(t *testing.T) {
	in := buildIntro()
	p := revmax.NewPlanner(in, revmax.GGreedyPlanner)
	out, err := p.Rollout(dist.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Issued == 0 {
		t.Fatal("planner issued nothing on a profitable instance")
	}
	if out.Revenue < 0 || out.Adoptions > out.Issued {
		t.Fatalf("implausible rollout: %+v", out)
	}
	if !p.Done() {
		t.Fatal("rollout did not exhaust the horizon")
	}
}

func TestFacadePlannerStepwise(t *testing.T) {
	in := buildIntro()
	p := revmax.NewPlanner(in, revmax.GGreedyPlanner)
	recs, err := p.PlanStep()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(recs, nil); err != nil {
		t.Fatal(err)
	}
	if p.Now() != 2 {
		t.Fatalf("Now = %d after one step", p.Now())
	}
}

func TestFacadeMetricsProfile(t *testing.T) {
	in := buildIntro()
	res := revmax.GGreedy(in)
	r := revmax.ProfileStrategy(in, res.Strategy)
	if r.Size != res.Strategy.Len() {
		t.Fatal("profile size mismatch")
	}
	if math.Abs(r.Revenue-res.Revenue) > 1e-9 {
		t.Fatal("profile revenue mismatch")
	}
	if len(r.RepeatHistogram) != in.T {
		t.Fatal("repeat histogram length != T")
	}
}

func TestFacadeInventoryHelpers(t *testing.T) {
	probs := []float64{0.5, 0.5, 0.5, 0.5}
	q, err := revmax.NewsvendorCapacity(probs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if q < 2 || q > 4 {
		t.Fatalf("newsvendor q = %d", q)
	}
	ob, err := revmax.OverbookCapacity(2, probs)
	if err != nil {
		t.Fatal(err)
	}
	if ob != 4 {
		t.Fatalf("overbook = %d, want 4", ob)
	}
	if risk := revmax.StockoutProbability(probs, 4); risk != 0 {
		t.Fatalf("risk %v with capacity = audience", risk)
	}
}

func TestFacadeCodecRoundTrip(t *testing.T) {
	in := buildIntro()
	var buf bytes.Buffer
	if err := revmax.EncodeInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := revmax.DecodeInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if revmax.GGreedy(back).Revenue != revmax.GGreedy(in).Revenue {
		t.Fatal("round-tripped instance behaves differently")
	}
	s := revmax.GGreedy(in).Strategy
	buf.Reset()
	if err := revmax.EncodeStrategy(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := revmax.DecodeStrategy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() {
		t.Fatal("strategy round trip lost triples")
	}
}

func TestFacadeSimulateMatchesRevenue(t *testing.T) {
	in := buildIntro()
	s := revmax.GGreedy(in).Strategy
	out := revmax.Simulate(in, s, revmax.SimOptions{Runs: 60000, Seed: 3})
	want := revmax.Revenue(in, s)
	tol := 4*out.StdDev/math.Sqrt(float64(out.Runs)) + 1e-9
	if math.Abs(out.MeanRevenue-want) > tol {
		t.Fatalf("simulated %v vs Rev(S) %v", out.MeanRevenue, want)
	}
}

func TestFacadeEstimateSaturation(t *testing.T) {
	rng := dist.NewRNG(9)
	truth := 0.45
	var records []revmax.SaturationRecord
	for i := 0; i < 20000; i++ {
		q := rng.Uniform(0.3, 0.8)
		mem := rng.Uniform(0.1, 2)
		p := q * math.Pow(truth, mem)
		records = append(records, revmax.SaturationRecord{Q: q, Memory: mem, Adopted: rng.Float64() < p})
	}
	got, err := revmax.EstimateSaturation(records)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-truth) > 0.05 {
		t.Fatalf("learned β %v, truth %v", got, truth)
	}
}

func TestFacadeParallelRLGreedy(t *testing.T) {
	in := buildIntro()
	seq := revmax.RLGreedy(in, 6, 5)
	par := revmax.RLGreedyParallel(in, 6, 5, 3)
	if seq.Revenue != par.Revenue {
		t.Fatalf("parallel %v != sequential %v", par.Revenue, seq.Revenue)
	}
}
