package revmax_test

// End-to-end integration tests: each walks a realistic pipeline across
// several subsystems and checks cross-module invariants that no unit
// test sees in isolation.

import (
	"bytes"
	"math"
	"testing"

	revmax "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/poibin"
	"repro/internal/revenue"
	"repro/internal/sim"
)

// Pipeline 1: generate → plan with every algorithm → validate → profile
// → simulate. The planned revenue of each algorithm must be realized by
// simulation within Monte-Carlo tolerance.
func TestPipelineGeneratePlanSimulate(t *testing.T) {
	ds, err := dataset.AmazonLike(dataset.Config{Seed: 101, Scale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	in := ds.Instance
	algos := map[string]core.Result{
		"GG":  core.GGreedy(in),
		"SLG": core.SLGreedy(in),
		"RLG": core.RLGreedy(in, 3, 9),
	}
	for name, res := range algos {
		if err := in.CheckValid(res.Strategy); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		profile := revmax.ProfileStrategy(in, res.Strategy)
		if math.Abs(profile.Revenue-res.Revenue) > 1e-6 {
			t.Fatalf("%s: profile revenue %v != result %v", name, profile.Revenue, res.Revenue)
		}
		out := sim.Simulate(in, res.Strategy, sim.Options{Runs: 30000, Seed: 11})
		tol := 5*out.StdDev/math.Sqrt(float64(out.Runs)) + 1e-9
		if math.Abs(out.MeanRevenue-res.Revenue) > tol {
			t.Fatalf("%s: simulated %v vs planned %v (tol %v)", name, out.MeanRevenue, res.Revenue, tol)
		}
	}
}

// Pipeline 2: persist a generated instance and a plan through the codec
// and confirm every downstream consumer (algorithms, simulator, metrics)
// behaves identically on the decoded copies.
func TestPipelinePersistenceTransparency(t *testing.T) {
	ds, err := dataset.EpinionsLike(dataset.Config{Seed: 102, Scale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	in := ds.Instance
	plan := core.GGreedy(in)

	var ibuf, sbuf bytes.Buffer
	if err := revmax.EncodeInstance(&ibuf, in); err != nil {
		t.Fatal(err)
	}
	if err := revmax.EncodeStrategy(&sbuf, plan.Strategy); err != nil {
		t.Fatal(err)
	}
	in2, err := revmax.DecodeInstance(&ibuf)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := revmax.DecodeStrategy(&sbuf)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := revenue.Revenue(in2, s2), plan.Revenue; math.Abs(got-want) > 1e-9 {
		t.Fatalf("decoded pair revenue %v != original %v", got, want)
	}
	if got, want := core.GGreedy(in2).Revenue, plan.Revenue; math.Abs(got-want) > 1e-9 {
		t.Fatalf("replanning on decoded instance: %v != %v", got, want)
	}
	a := sim.Simulate(in, plan.Strategy, sim.Options{Runs: 2000, Seed: 5})
	b := sim.Simulate(in2, s2, sim.Options{Runs: 2000, Seed: 5})
	if a.MeanRevenue != b.MeanRevenue {
		t.Fatal("simulation differs across codec round trip")
	}
}

// Pipeline 3: the T=1 exact solver, the greedy, and the exhaustive
// optimum must agree on their documented relationships for a generated
// (not hand-built) instance restricted to one step.
func TestPipelineT1ExactVsGreedy(t *testing.T) {
	ds, err := dataset.EpinionsLike(dataset.Config{Seed: 103, Scale: 0.004, T: 1, K: 1, TopN: 5})
	if err != nil {
		t.Fatal(err)
	}
	in := ds.Instance
	exact, err := matching.SolveT1(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckValid(exact.Strategy); err != nil {
		t.Fatal(err)
	}
	exactRev := revenue.Revenue(in, exact.Strategy)
	gg := core.GGreedy(in)
	if gg.Revenue > exactRev+1e-6 {
		t.Fatalf("greedy %v beats exact T=1 solver %v (k=1 case must be exact)", gg.Revenue, exactRev)
	}
	if exactRev > exact.Weight+1e-9 {
		t.Fatalf("realized revenue %v above separable weight %v", exactRev, exact.Weight)
	}
}

// Pipeline 4: capacity setting feeds back into planning. Newsvendor
// capacities at a high service level admit at least the revenue of
// capacities at a low service level (more capacity can only help the
// optimizer).
func TestPipelineCapacitySettingMonotone(t *testing.T) {
	rng := dist.NewRNG(104)
	const users, items = 40, 3
	qOf := make([][]float64, items)
	build := func(caps []int) *model.Instance {
		in := model.NewInstance(users, items, 2, 1)
		for i := 0; i < items; i++ {
			in.SetItem(model.ItemID(i), model.ClassID(i), 0.8, caps[i])
			for tt := 1; tt <= 2; tt++ {
				in.SetPrice(model.ItemID(i), model.TimeStep(tt), 50+float64(30*i))
			}
			for u := 0; u < users; u++ {
				in.AddCandidate(model.UserID(u), model.ItemID(i), 1, qOf[i][u])
				in.AddCandidate(model.UserID(u), model.ItemID(i), 2, qOf[i][u])
			}
		}
		in.FinishCandidates()
		return in
	}
	for i := range qOf {
		qOf[i] = make([]float64, users)
		for u := range qOf[i] {
			qOf[i][u] = rng.Uniform(0.1, 0.8)
		}
	}
	capsAt := func(level float64) []int {
		caps := make([]int, items)
		for i := range caps {
			q, err := revmax.NewsvendorCapacity(qOf[i], level)
			if err != nil {
				t.Fatal(err)
			}
			if q < 1 {
				q = 1
			}
			caps[i] = q
		}
		return caps
	}
	low := core.GGreedy(build(capsAt(0.5))).Revenue
	high := core.GGreedy(build(capsAt(0.99))).Revenue
	if high < low-1e-9 {
		t.Fatalf("larger capacities earned less: %v vs %v", high, low)
	}
}

// Pipeline 5: the relaxed R-REVMAX objective with the exact oracle upper-
// bounds what stock-enforced simulation realizes for an over-capacity
// strategy — and both sit below the stock-free analytic revenue.
func TestPipelineRelaxationOrdering(t *testing.T) {
	in := model.NewInstance(6, 1, 1, 1)
	in.SetItem(0, 0, 1, 2) // 2 units, 6 prospects
	in.SetPrice(0, 1, 10)
	for u := 0; u < 6; u++ {
		in.AddCandidate(model.UserID(u), 0, 1, 0.5)
	}
	in.FinishCandidates()
	over := model.NewStrategy()
	for u := 0; u < 6; u++ {
		over.Add(model.Triple{U: model.UserID(u), I: 0, T: 1})
	}
	free := revenue.Revenue(in, over)
	eff := revenue.EffectiveRevenue(in, over, poibin.ExactOracle{})
	gated := sim.Simulate(in, over, sim.Options{Runs: 200000, Seed: 7, EnforceStock: true})
	if !(eff < free) {
		t.Fatalf("effective %v should be below stock-free %v", eff, free)
	}
	// Stock-enforced simulation sells at most 2 units: mean revenue must
	// be below the relaxation's optimistic estimate... both estimates cap
	// realized sales, so compare against the hard bound 2·price too.
	if gated.MeanRevenue > 20+1e-9 {
		t.Fatalf("simulation sold more than stock: %v", gated.MeanRevenue)
	}
	if gated.MeanRevenue > free {
		t.Fatalf("gated %v above ungated %v", gated.MeanRevenue, free)
	}
}
