// Command datagen generates a synthetic dataset and prints its Table 1
// statistics row, for inspecting generator output at different scales.
//
// Usage:
//
//	datagen -dataset amazon -scale 0.05
//	datagen -dataset synthetic -users 100000
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/textplot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/--help: usage already printed, exit 0
		}
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	// Buffer the flag package's output: -h/--help usage is copied to
	// stdout (exit 0), while parse errors are reported exactly once —
	// by main, on stderr — instead of also spamming usage onto stdout.
	var usage bytes.Buffer
	fs.SetOutput(&usage)
	dsName := fs.String("dataset", "amazon", "dataset: "+strings.Join(dataset.Names(), " | "))
	scale := fs.Float64("scale", 0.01, "dataset scale (1.0 = paper scale)")
	seed := fs.Uint64("seed", 42, "random seed")
	users := fs.Int("users", 2000, "user count (synthetic only)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprint(stdout, usage.String())
		}
		return err
	}

	ds, err := dataset.Build(*dsName, dataset.Config{Seed: *seed, Scale: *scale, Users: *users})
	if err != nil {
		return err
	}

	s := ds.Stats()
	t := &textplot.Table{
		Title:   fmt.Sprintf("Dataset statistics (%s, scale %.3g)", ds.Name, *scale),
		Headers: []string{"Metric", "Value"},
	}
	t.AddRow("#Users", fmt.Sprint(s.Users))
	t.AddRow("#Items", fmt.Sprint(s.Items))
	t.AddRow("#Ratings", fmt.Sprint(s.Ratings))
	t.AddRow("#Triples with positive q", fmt.Sprint(s.PositiveQ))
	t.AddRow("#Item classes", fmt.Sprint(s.Classes))
	t.AddRow("Largest class size", fmt.Sprint(s.LargestClass))
	t.AddRow("Smallest class size", fmt.Sprint(s.SmallestClass))
	t.AddRow("Median class size", fmt.Sprint(s.MedianClass))
	if ds.RMSE > 0 {
		t.AddRow("MF held-out RMSE", fmt.Sprintf("%.3f", ds.RMSE))
	}
	fmt.Fprint(stdout, t.Render())
	return nil
}
