// Command datagen generates a synthetic dataset and prints its Table 1
// statistics row, for inspecting generator output at different scales.
//
// Usage:
//
//	datagen -dataset amazon -scale 0.05
//	datagen -dataset synthetic -users 100000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/textplot"
)

func main() {
	dsName := flag.String("dataset", "amazon", "dataset: amazon | epinions | synthetic")
	scale := flag.Float64("scale", 0.01, "dataset scale (1.0 = paper scale)")
	seed := flag.Uint64("seed", 42, "random seed")
	users := flag.Int("users", 2000, "user count (synthetic only)")
	flag.Parse()

	dc := dataset.Config{Seed: *seed, Scale: *scale}
	var (
		ds  *dataset.Dataset
		err error
	)
	switch *dsName {
	case "amazon":
		ds, err = dataset.AmazonLike(dc)
	case "epinions":
		ds, err = dataset.EpinionsLike(dc)
	case "synthetic":
		ds, err = dataset.Scalability(*users, dc)
	default:
		err = fmt.Errorf("unknown dataset %q", *dsName)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	s := ds.Stats()
	t := &textplot.Table{
		Title:   fmt.Sprintf("Dataset statistics (%s, scale %.3g)", ds.Name, *scale),
		Headers: []string{"Metric", "Value"},
	}
	t.AddRow("#Users", fmt.Sprint(s.Users))
	t.AddRow("#Items", fmt.Sprint(s.Items))
	t.AddRow("#Ratings", fmt.Sprint(s.Ratings))
	t.AddRow("#Triples with positive q", fmt.Sprint(s.PositiveQ))
	t.AddRow("#Item classes", fmt.Sprint(s.Classes))
	t.AddRow("Largest class size", fmt.Sprint(s.LargestClass))
	t.AddRow("Smallest class size", fmt.Sprint(s.SmallestClass))
	t.AddRow("Median class size", fmt.Sprint(s.MedianClass))
	if ds.RMSE > 0 {
		t.AddRow("MF held-out RMSE", fmt.Sprintf("%.3f", ds.RMSE))
	}
	fmt.Print(t.Render())
}
