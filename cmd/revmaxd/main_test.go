package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"
)

// TestHelpExitsZero: -h prints usage and returns flag.ErrHelp, which
// main maps to exit code 0 — the cmd/simulate fix, applied here.
func TestHelpExitsZero(t *testing.T) {
	for _, arg := range []string{"-h", "--help"} {
		var buf bytes.Buffer
		err := run([]string{arg}, &buf)
		if !errors.Is(err, flag.ErrHelp) {
			t.Fatalf("run(%s) = %v, want flag.ErrHelp", arg, err)
		}
		if !strings.Contains(buf.String(), "-algo") {
			t.Fatalf("usage output missing flags:\n%s", buf.String())
		}
	}
}

// TestUnknownAlgorithmFailsFast: a bad -algo fails before dataset
// generation or port binding.
func TestUnknownAlgorithmFailsFast(t *testing.T) {
	err := run([]string{"-algo", "definitely-not-real"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if !strings.Contains(err.Error(), "g-greedy") {
		t.Fatalf("error does not list known algorithms: %v", err)
	}
}

// TestUnknownDatasetFails: the dataset registry rejects unknown names.
func TestUnknownDatasetFails(t *testing.T) {
	err := run([]string{"-dataset", "netflix"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if !strings.Contains(err.Error(), "amazon") {
		t.Fatalf("error does not list known datasets: %v", err)
	}
}
