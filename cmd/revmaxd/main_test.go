package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/solver"
	"repro/internal/testgen"
)

// TestHelpExitsZero: -h prints usage and returns flag.ErrHelp, which
// main maps to exit code 0 — the cmd/simulate fix, applied here.
func TestHelpExitsZero(t *testing.T) {
	for _, arg := range []string{"-h", "--help"} {
		var buf bytes.Buffer
		err := run([]string{arg}, &buf)
		if !errors.Is(err, flag.ErrHelp) {
			t.Fatalf("run(%s) = %v, want flag.ErrHelp", arg, err)
		}
		if !strings.Contains(buf.String(), "-algo") {
			t.Fatalf("usage output missing flags:\n%s", buf.String())
		}
	}
}

// TestUnknownAlgorithmFailsFast: a bad -algo fails before dataset
// generation or port binding.
func TestUnknownAlgorithmFailsFast(t *testing.T) {
	err := run([]string{"-algo", "definitely-not-real"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if !strings.Contains(err.Error(), "g-greedy") {
		t.Fatalf("error does not list known algorithms: %v", err)
	}
}

// TestUnknownDatasetFails: the dataset registry rejects unknown names.
func TestUnknownDatasetFails(t *testing.T) {
	err := run([]string{"-dataset", "netflix"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if !strings.Contains(err.Error(), "amazon") {
		t.Fatalf("error does not list known datasets: %v", err)
	}
}

// TestBadWALSyncPolicyFailsFast: a bad -wal-sync fails before dataset
// generation or port binding.
func TestBadWALSyncPolicyFailsFast(t *testing.T) {
	err := run([]string{"-data-dir", t.TempDir(), "-wal-sync", "sometimes"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("bad -wal-sync accepted")
	}
	if !strings.Contains(err.Error(), "always") {
		t.Fatalf("error does not list valid policies: %v", err)
	}
}

// TestIncrementalRequiresGGreedy: -incremental reaches the serving
// layer's config validation, which demands a registry G-Greedy
// algorithm (the persistent session replays its exact selection loop).
func TestIncrementalRequiresGGreedy(t *testing.T) {
	err := run([]string{"-dataset", "synthetic", "-users", "40", "-algo", "rl-greedy", "-incremental"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "Incremental") {
		t.Fatalf("-incremental with rl-greedy not rejected: %v", err)
	}
}

// TestSnapshotAndDataDirConflict: the legacy warm-restart file and the
// durable data dir cannot be combined.
func TestSnapshotAndDataDirConflict(t *testing.T) {
	err := run([]string{"-data-dir", t.TempDir(), "-snapshot", "x.snap"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("conflicting flags not rejected: %v", err)
	}
}

func daemonInstance(t *testing.T) *model.Instance {
	t.Helper()
	in := testgen.Random(dist.NewRNG(3), testgen.Params{
		Users: 40, Items: 8, Classes: 4, T: 5, K: 2,
		MaxCap: 5, CandProb: 0.4, MinPrice: 5, MaxPrice: 50,
	})
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

// TestDrainAndStopPersistsUnflushedEvents is the graceful-shutdown
// drain contract: events accepted but never flushed by any client must
// still be applied, fsynced, and sealed into the final snapshot before
// the process exits — a restart must see every one of them.
func TestDrainAndStopPersistsUnflushedEvents(t *testing.T) {
	dir := t.TempDir()
	cfg := serve.Config{Durability: &serve.Durability{Dir: dir}}
	var out bytes.Buffer
	engine, err := bootEngine(cfg, "", "", "", 0, 0, 0, &out)
	if err == nil {
		t.Fatal("boot without state or instance source must fail")
	}
	engine, err = serve.Open(daemonInstance(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := engine.Instance()
	const n = 40
	for k := 0; k < n; k++ {
		ev := serve.Event{
			User:    model.UserID(k % in.NumUsers),
			Item:    model.ItemID(k % in.NumItems()),
			T:       1,
			Adopted: k%4 == 0,
		}
		if err := engine.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	// No Flush, no Sync: drainAndStop owns making these durable.
	if err := drainAndStop(engine, "", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "durable state sealed") {
		t.Fatalf("shutdown did not report sealing: %q", out.String())
	}

	restarted, err := bootEngine(cfg, "", "", "", 0, 0, 0, &out)
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	if !strings.Contains(out.String(), "recovered durable state") {
		t.Fatalf("restart did not recover: %q", out.String())
	}
	st := restarted.Stats()
	if st.Exposures != n {
		t.Fatalf("restart sees %d exposures, want %d — shutdown drain lost events", st.Exposures, n)
	}
	if st.Adoptions != n/4 {
		t.Fatalf("restart sees %d adoptions, want %d", st.Adoptions, n/4)
	}
}

// TestBootRecoversAfterKill: the kill-9 path end to end through the
// daemon's boot logic — crash without any shutdown handling, reboot,
// and serve the synced state.
func TestBootRecoversAfterKill(t *testing.T) {
	dir := t.TempDir()
	cfg := serve.Config{Durability: &serve.Durability{Dir: dir}}
	engine, err := serve.Open(daemonInstance(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := engine.Instance()
	for k := 0; k < 25; k++ {
		ev := serve.Event{User: model.UserID(k % in.NumUsers), Item: model.ItemID(k % in.NumItems()), T: 1, Adopted: true}
		if err := engine.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := engine.Sync(); err != nil {
		t.Fatal(err)
	}
	engine.Kill()

	var out bytes.Buffer
	restarted, err := bootEngine(cfg, "", "", "", 0, 0, 0, &out)
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	if got := restarted.Stats().Exposures; got != 25 {
		t.Fatalf("recovered %d exposures after kill, want 25", got)
	}
	if _, err := restarted.Recommend(0, restarted.Now()); err != nil {
		t.Fatal(err)
	}
}

// TestBadCutsFailFast: a malformed -cuts list fails before dataset
// generation or port binding, mirroring the revmax CLI.
func TestBadCutsFailFast(t *testing.T) {
	for _, bad := range []string{"0", "x", "2,,4", "-1"} {
		err := run([]string{"-cuts", bad}, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), "-cuts") {
			t.Fatalf("-cuts %q not rejected: %v", bad, err)
		}
	}
}

// TestParseCuts pins the -cuts grammar shared with the revmax CLI.
func TestParseCuts(t *testing.T) {
	got, err := parseCuts(" 2, 4 ")
	if err != nil || len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("parseCuts(\" 2, 4 \") = %v, %v", got, err)
	}
	if got, err := parseCuts(""); err != nil || got != nil {
		t.Fatalf("parseCuts(\"\") = %v, %v; want nil, nil", got, err)
	}
}

// TestWorkersAndCutsFlagsDocumented: the daemon exposes the parallel
// and staged solver knobs like the batch CLI does.
func TestWorkersAndCutsFlagsDocumented(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-h"}, &buf); !errors.Is(err, flag.ErrHelp) {
		t.Fatal(err)
	}
	for _, flagName := range []string{"-workers", "-cuts"} {
		if !strings.Contains(buf.String(), flagName) {
			t.Fatalf("usage output missing %s:\n%s", flagName, buf.String())
		}
	}
}

// TestParallelPlannerMatchesSequential boots an engine with
// g-greedy-parallel and verifies the initial plan is identical to the
// sequential g-greedy engine's — the registry contract, end to end
// through the daemon's config plumbing.
func TestParallelPlannerMatchesSequential(t *testing.T) {
	in := daemonInstance(t)
	seqEng, err := serve.Open(in, serve.Config{Algorithm: "g-greedy"})
	if err != nil {
		t.Fatal(err)
	}
	defer seqEng.Close()
	parEng, err := serve.Open(in, serve.Config{
		Algorithm: "g-greedy-parallel",
		Solver:    solver.Options{Workers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer parEng.Close()
	seqStats, parStats := seqEng.Stats(), parEng.Stats()
	if parStats.PlanRevenue != seqStats.PlanRevenue || parStats.PlannedTriples != seqStats.PlannedTriples {
		t.Fatalf("parallel plan (rev %v, %d triples) != sequential (rev %v, %d triples)",
			parStats.PlanRevenue, parStats.PlannedTriples, seqStats.PlanRevenue, seqStats.PlannedTriples)
	}
}

// TestShardsFlagFailFast: an out-of-range -shards and the
// -shards/-snapshot conflict both fail before dataset generation or
// port binding.
func TestShardsFlagFailFast(t *testing.T) {
	for _, bad := range []string{"0", "-3"} {
		err := run([]string{"-shards", bad}, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), "-shards") {
			t.Fatalf("-shards %s not rejected: %v", bad, err)
		}
	}
	err := run([]string{"-shards", "2", "-snapshot", "x.snap"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "single-engine") {
		t.Fatalf("-shards 2 with -snapshot not rejected: %v", err)
	}
}

// TestFlushIntervalFailFast: a negative -flush-interval fails before
// dataset generation or port binding; 0 (ticker disabled) is legal.
func TestFlushIntervalFailFast(t *testing.T) {
	err := run([]string{"-flush-interval", "-1s"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-flush-interval") {
		t.Fatalf("negative -flush-interval not rejected: %v", err)
	}
}

// TestObservabilityFlagsFailFast: a bad -log-format or a negative
// -slow-ms fails before dataset generation or port binding.
func TestObservabilityFlagsFailFast(t *testing.T) {
	err := run([]string{"-log-format", "xml"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "log format") {
		t.Fatalf("-log-format xml not rejected: %v", err)
	}
	err = run([]string{"-slow-ms", "-5"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-slow-ms") {
		t.Fatalf("negative -slow-ms not rejected: %v", err)
	}
}

// TestFlushTickerDrivesClusterBarrier: the daemon's periodic flush
// ticker alone — no /v1/advance, no ReplanEvery cadence, no explicit
// Flush — must carry a fed adoption through a coordinated barrier.
func TestFlushTickerDrivesClusterBarrier(t *testing.T) {
	cl, err := cluster.Open(daemonInstance(t), cluster.Config{Shards: 2, ReplanEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	stop := startFlushTicker(cl, 5*time.Millisecond)
	defer stop()
	in := cl.Instance()
	var fed bool
	for u := 0; u < in.NumUsers && !fed; u++ {
		for _, cand := range in.UserCandidates(model.UserID(u)) {
			if cand.T == 1 {
				if err := cl.Feed(serve.Event{User: model.UserID(u), Item: cand.I, T: 1, Adopted: true}); err != nil {
					t.Fatal(err)
				}
				fed = true
				break
			}
		}
	}
	if !fed {
		t.Fatal("instance has no step-1 candidate")
	}
	deadline := time.Now().Add(10 * time.Second)
	for cl.CoordinatorStats().Replans < 2 {
		if time.Now().After(deadline) {
			t.Fatal("flush ticker never drove a coordinated replan")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterServesSharded is the daemon-level sharded e2e: boot a
// 3-shard cluster the way run does, serve it over HTTP, and check that
// recommendations route, /v1/stats aggregates the fleet, and /metrics
// is a conformant exposition carrying per-shard labels.
func TestClusterServesSharded(t *testing.T) {
	cl, err := cluster.Open(daemonInstance(t), cluster.Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cluster.Handler(cl))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/recommend?user=7&t=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/recommend code %d: %s", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Users   int `json:"users"`
		Cluster struct {
			Shards int `json:"shards"`
		} `json:"cluster"`
		PerShard []struct {
			Users int `json:"users"`
		} `json:"per_shard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Users != 40 || stats.Cluster.Shards != 3 || len(stats.PerShard) != 3 {
		t.Fatalf("aggregated stats wrong: %+v", stats)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, err := obs.ParseExposition(bytes.NewReader(metrics)); err != nil {
		t.Fatalf("merged /metrics fails conformance: %v", err)
	}
	if !strings.Contains(string(metrics), `shard="2"`) {
		t.Fatal("merged /metrics missing per-shard labels")
	}

	var out bytes.Buffer
	if err := drainAndStop(cl, "", &out); err != nil {
		t.Fatal(err)
	}
}

// TestClusterBootRecoversDurable drives bootCluster's two paths over
// one directory: fresh durable boot, graceful drain, then a second boot
// that must recover the fleet instead of re-generating the world.
func TestClusterBootRecoversDurable(t *testing.T) {
	dir := t.TempDir()
	cfg := cluster.Config{Shards: 2, Durability: &serve.Durability{Dir: dir}}
	cl, err := cluster.Open(daemonInstance(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		ev := serve.Event{User: model.UserID(k % 40), Item: model.ItemID(k % 8), T: 1, Adopted: k%5 == 0}
		if err := cl.Feed(ev); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := drainAndStop(cl, "", &out); err != nil {
		t.Fatal(err)
	}

	restarted, err := bootCluster(cfg, "", "", 0, 0, 0, &out)
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	if !strings.Contains(out.String(), "recovered 2-shard durable cluster") {
		t.Fatalf("restart did not recover the cluster: %q", out.String())
	}
	if got := restarted.Stats().Exposures; got != 10 {
		t.Fatalf("recovered cluster sees %d exposures, want 10", got)
	}
}
