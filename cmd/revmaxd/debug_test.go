package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

// TestDebugHandler drives the -debug-addr mux: pprof index, the
// exposition-conformant /metrics mirror, and a /debug/traces payload
// containing the boot plan trace.
func TestDebugHandler(t *testing.T) {
	engine, err := serve.NewEngine(daemonInstance(t), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	srv := httptest.NewServer(debugHandler(serve.Handler(engine)))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: code %d, body %.120q", code, body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics code %d", code)
	}
	if _, err := obs.ParseExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics fails conformance: %v", err)
	}
	for _, want := range []string{"revmaxd_solve_seconds", "revmaxd_plan_revision", "revmaxd_uptime_seconds"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, body)
		}
	}
	code, body = get("/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces code %d", code)
	}
	var payload struct {
		Enabled bool           `json:"enabled"`
		Traces  []obs.SpanData `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/debug/traces is not JSON: %v\n%s", err, body)
	}
	if !payload.Enabled || len(payload.Traces) == 0 {
		t.Fatalf("expected an enabled tracer with the boot plan trace, got %+v", payload)
	}
	found := false
	for _, tr := range payload.Traces {
		if tr.Name == "plan" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no plan trace in payload: %s", body)
	}
}
