package main

import (
	"net/http"
	"net/http/pprof"
)

// debugHandler is the management-plane mux served on -debug-addr: the
// Go pprof suite plus mirrors of the API handler's /metrics and
// /debug/traces (single-engine or cluster-aggregated, whichever is
// serving). The handlers are wired explicitly instead of leaning on
// net/http/pprof's DefaultServeMux side effects, so the main API
// listener can never accidentally expose profiling.
func debugHandler(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/traces", api)
	mux.Handle("GET /metrics", api)
	return mux
}
