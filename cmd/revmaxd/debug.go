package main

import (
	"net/http"
	"net/http/pprof"

	"repro/internal/serve"
)

// debugHandler is the management-plane mux served on -debug-addr: the
// Go pprof suite plus mirrors of the engine's /metrics and
// /debug/traces. The handlers are wired explicitly instead of leaning
// on net/http/pprof's DefaultServeMux side effects, so the main API
// listener can never accidentally expose profiling.
func debugHandler(e *serve.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = e.Tracer().WriteJSON(w)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = e.Metrics().WritePrometheus(w)
	})
	return mux
}
