// Command revmaxd is the online recommendation-serving daemon: it plans
// a REVMAX strategy for a dataset and serves per-user recommendation
// lookups over HTTP/JSON while folding adoption feedback back into
// asynchronous receding-horizon replans.
//
// Usage:
//
//	revmaxd -dataset amazon -scale 0.01 -addr :8372
//	revmaxd -load-instance catalog.json -algo SLG
//	revmaxd -dataset synthetic -users 5000 -snapshot /var/lib/revmaxd.snap
//
// Endpoints: /v1/recommend, /v1/recommend/batch, /v1/adopt, /v1/advance,
// /v1/stats, /healthz, /metrics.
//
//	curl 'localhost:8372/v1/recommend?user=7&t=1'
//	curl -d '{"user":7,"item":3,"t":1,"adopted":true}' localhost:8372/v1/adopt
//
// With -snapshot, the daemon restores warm from the file when it exists
// and writes a fresh snapshot on graceful shutdown (SIGINT/SIGTERM), so
// a restart serves byte-identical recommendations.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	dsName := flag.String("dataset", "amazon", "dataset: amazon | epinions | synthetic")
	scale := flag.Float64("scale", 0.01, "dataset scale (1.0 = paper scale)")
	seed := flag.Uint64("seed", 42, "random seed")
	users := flag.Int("users", 2000, "user count (synthetic dataset only)")
	algoName := flag.String("algo", "GG", "planning algorithm: GG | GG-No | SLG | RLG | TopRev")
	perms := flag.Int("perms", 5, "RL-Greedy permutations")
	loadInstance := flag.String("load-instance", "", "load the instance from a JSON file instead of generating one")
	snapshot := flag.String("snapshot", "", "snapshot file: restore from it at boot if present, write it on shutdown")
	replanEvery := flag.Int("replan-every", 32, "adoptions per background replan")
	shards := flag.Int("shards", 0, "user-store shard count (0 = next pow2 ≥ GOMAXPROCS)")
	flag.Parse()

	algo, err := algoByName(*algoName, *perms, *seed)
	if err != nil {
		fail(err)
	}
	cfg := serve.Config{Algorithm: algo, Shards: *shards, ReplanEvery: *replanEvery}

	engine, err := bootEngine(cfg, *snapshot, *loadInstance, *dsName, *scale, *seed, *users)
	if err != nil {
		fail(err)
	}
	defer engine.Close()

	st := engine.Stats()
	fmt.Printf("revmaxd: %d users, %d items, T=%d, k=%d; plan rev %d with %d triples (expected revenue %.2f), %d shards\n",
		st.Users, st.Items, st.Horizon, st.K, st.PlanRevision, st.PlannedTriples, st.PlanRevenue, st.Shards)

	server := &http.Server{
		Addr:         *addr,
		Handler:      serve.Handler(engine),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	fmt.Printf("revmaxd: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	exitCode := 0
	select {
	case sig := <-sigc:
		fmt.Printf("revmaxd: %v — shutting down\n", sig)
	case err := <-errc:
		// Listener died, but the engine is healthy: still run the full
		// shutdown sequence so accumulated feedback reaches the snapshot.
		fmt.Fprintf(os.Stderr, "revmaxd: server error: %v — shutting down\n", err)
		exitCode = 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "revmaxd: shutdown: %v\n", err)
	}
	engine.Flush()
	if *snapshot != "" {
		if err := writeSnapshot(engine, *snapshot); err != nil {
			fail(err)
		}
		fmt.Printf("revmaxd: snapshot written to %s\n", *snapshot)
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// bootEngine restores from the snapshot when one exists, otherwise
// builds the instance (from file or generator) and plans cold.
func bootEngine(cfg serve.Config, snapshot, loadInstance, dsName string, scale float64, seed uint64, users int) (*serve.Engine, error) {
	if snapshot != "" {
		if f, err := os.Open(snapshot); err == nil {
			defer f.Close()
			engine, rerr := serve.Restore(f, cfg)
			if rerr != nil {
				return nil, fmt.Errorf("restore %s: %w", snapshot, rerr)
			}
			fmt.Printf("revmaxd: restored warm from %s\n", snapshot)
			return engine, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	in, err := buildInstance(loadInstance, dsName, scale, seed, users)
	if err != nil {
		return nil, err
	}
	return serve.NewEngine(in, cfg)
}

func buildInstance(loadInstance, dsName string, scale float64, seed uint64, users int) (*model.Instance, error) {
	if loadInstance != "" {
		f, err := os.Open(loadInstance)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return codec.DecodeInstance(f)
	}
	dc := dataset.Config{Seed: seed, Scale: scale}
	var ds *dataset.Dataset
	var err error
	switch dsName {
	case "amazon":
		ds, err = dataset.AmazonLike(dc)
	case "epinions":
		ds, err = dataset.EpinionsLike(dc)
	case "synthetic":
		ds, err = dataset.Scalability(users, dc)
	default:
		err = fmt.Errorf("unknown dataset %q", dsName)
	}
	if err != nil {
		return nil, err
	}
	return ds.Instance, nil
}

func algoByName(name string, perms int, seed uint64) (planner.Algorithm, error) {
	switch name {
	case "GG":
		return func(in *model.Instance) *model.Strategy { return core.GGreedy(in).Strategy }, nil
	case "GG-No":
		return func(in *model.Instance) *model.Strategy { return core.GlobalNo(in).Strategy }, nil
	case "SLG":
		return func(in *model.Instance) *model.Strategy { return core.SLGreedy(in).Strategy }, nil
	case "RLG":
		return func(in *model.Instance) *model.Strategy { return core.RLGreedy(in, perms, seed+1).Strategy }, nil
	case "TopRev":
		return func(in *model.Instance) *model.Strategy { return core.TopRE(in).Strategy }, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func writeSnapshot(engine *serve.Engine, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := engine.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "revmaxd: %v\n", err)
	os.Exit(1)
}
