// Command revmaxd is the online recommendation-serving daemon: it plans
// a REVMAX strategy for a dataset and serves per-user recommendation
// lookups over HTTP/JSON while folding adoption feedback back into
// asynchronous receding-horizon replans.
//
// Usage:
//
//	revmaxd -dataset amazon -scale 0.01 -addr :8372
//	revmaxd -load-instance catalog.json -algo sl-greedy
//	revmaxd -algo rl-greedy -perms 20 -snapshot /var/lib/revmaxd.snap
//
// The planning algorithm is any name in the solver registry (legacy
// aliases like GG/SLG/RLG included); the daemon's whole planning
// behavior is declared by flags, no code changes needed.
//
// Endpoints: /v1/recommend, /v1/recommend/batch, /v1/adopt, /v1/advance,
// /v1/stats, /healthz, /metrics.
//
//	curl 'localhost:8372/v1/recommend?user=7&t=1'
//	curl -d '{"user":7,"item":3,"t":1,"adopted":true}' localhost:8372/v1/adopt
//
// With -snapshot, the daemon restores warm from the file when it exists
// and writes a fresh snapshot on graceful shutdown (SIGINT/SIGTERM), so
// a restart serves byte-identical recommendations.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/solver"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/--help: usage already printed, exit 0
		}
		fmt.Fprintf(os.Stderr, "revmaxd: %v\n", err)
		os.Exit(1)
	}
}

// run parses args, boots the engine, and serves until a signal or a
// fatal server error. It is the testable entry point: flag errors and
// invalid configurations return before anything binds a port.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("revmaxd", flag.ContinueOnError)
	// Buffer the flag package's output: -h/--help usage is copied to
	// stdout (exit 0), while parse errors are reported exactly once —
	// by main, on stderr — instead of also spamming usage onto stdout.
	var usage bytes.Buffer
	fs.SetOutput(&usage)
	addr := fs.String("addr", ":8372", "listen address")
	dsName := fs.String("dataset", "amazon", "dataset: "+strings.Join(dataset.Names(), " | "))
	scale := fs.Float64("scale", 0.01, "dataset scale (1.0 = paper scale)")
	seed := fs.Uint64("seed", 42, "random seed")
	users := fs.Int("users", 2000, "user count (synthetic dataset only)")
	algoName := fs.String("algo", "GG", "planning algorithm: any solver-registry name or alias")
	perms := fs.Int("perms", 5, "RL-Greedy permutations")
	loadInstance := fs.String("load-instance", "", "load the instance from a JSON file instead of generating one")
	snapshot := fs.String("snapshot", "", "snapshot file: restore from it at boot if present, write it on shutdown")
	replanEvery := fs.Int("replan-every", 32, "adoptions per background replan")
	shards := fs.Int("shards", 0, "user-store shard count (0 = next pow2 ≥ GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprint(stdout, usage.String())
		}
		return err
	}

	// Resolve the algorithm up front: a typo in -algo must fail in
	// milliseconds with the registry's name list, not after dataset
	// generation.
	if _, err := solver.Lookup(*algoName); err != nil {
		return err
	}
	cfg := serve.Config{
		Algorithm:   *algoName,
		Solver:      solver.Options{Perms: *perms, Seed: *seed + 1},
		Shards:      *shards,
		ReplanEvery: *replanEvery,
	}

	engine, err := bootEngine(cfg, *snapshot, *loadInstance, *dsName, *scale, *seed, *users, stdout)
	if err != nil {
		return err
	}
	defer engine.Close()

	st := engine.Stats()
	fmt.Fprintf(stdout, "revmaxd: %d users, %d items, T=%d, k=%d; plan rev %d with %d triples (expected revenue %.2f), %d shards, algo %s\n",
		st.Users, st.Items, st.Horizon, st.K, st.PlanRevision, st.PlannedTriples, st.PlanRevenue, st.Shards, *algoName)

	server := &http.Server{
		Addr:         *addr,
		Handler:      serve.Handler(engine),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	fmt.Fprintf(stdout, "revmaxd: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	var serveErr error
	select {
	case sig := <-sigc:
		fmt.Fprintf(stdout, "revmaxd: %v — shutting down\n", sig)
	case err := <-errc:
		// Listener died, but the engine is healthy: still run the full
		// shutdown sequence so accumulated feedback reaches the snapshot.
		fmt.Fprintf(os.Stderr, "revmaxd: server error: %v — shutting down\n", err)
		serveErr = err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "revmaxd: shutdown: %v\n", err)
	}
	engine.Flush()
	if *snapshot != "" {
		if err := writeSnapshot(engine, *snapshot); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "revmaxd: snapshot written to %s\n", *snapshot)
	}
	return serveErr
}

// bootEngine restores from the snapshot when one exists, otherwise
// builds the instance (from file or generator) and plans cold.
func bootEngine(cfg serve.Config, snapshot, loadInstance, dsName string, scale float64, seed uint64, users int, stdout io.Writer) (*serve.Engine, error) {
	if snapshot != "" {
		if f, err := os.Open(snapshot); err == nil {
			defer f.Close()
			engine, rerr := serve.Restore(f, cfg)
			if rerr != nil {
				return nil, fmt.Errorf("restore %s: %w", snapshot, rerr)
			}
			fmt.Fprintf(stdout, "revmaxd: restored warm from %s\n", snapshot)
			return engine, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	in, err := buildInstance(loadInstance, dsName, scale, seed, users)
	if err != nil {
		return nil, err
	}
	return serve.NewEngine(in, cfg)
}

func buildInstance(loadInstance, dsName string, scale float64, seed uint64, users int) (*model.Instance, error) {
	if loadInstance != "" {
		f, err := os.Open(loadInstance)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return codec.DecodeInstance(f)
	}
	ds, err := dataset.Build(dsName, dataset.Config{Seed: seed, Scale: scale, Users: users})
	if err != nil {
		return nil, err
	}
	return ds.Instance, nil
}

func writeSnapshot(engine *serve.Engine, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := engine.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
