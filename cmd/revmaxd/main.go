// Command revmaxd is the online recommendation-serving daemon: it plans
// a REVMAX strategy for a dataset and serves per-user recommendation
// lookups over HTTP/JSON while folding adoption feedback back into
// asynchronous receding-horizon replans.
//
// Usage:
//
//	revmaxd -dataset amazon -scale 0.01 -addr :8372
//	revmaxd -load-instance catalog.json -algo sl-greedy
//	revmaxd -algo rl-greedy -perms 20 -snapshot /var/lib/revmaxd.snap
//	revmaxd -data-dir /var/lib/revmaxd -wal-sync batch -snapshot-interval 5m
//
// The planning algorithm is any name in the solver registry (legacy
// aliases like GG/SLG/RLG included); the daemon's whole planning
// behavior is declared by flags, no code changes needed.
//
// Endpoints: /v1/recommend, /v1/recommend/batch, /v1/adopt, /v1/advance,
// /v1/stats, /healthz (liveness + SLO verdicts, JSON), /metrics
// (Prometheus text exposition), /debug/traces (recent trace timelines,
// JSON). Request endpoints honor an X-Trace-Id header (16 hex digits)
// for cross-service correlation.
//
// Observability. Structured logs go to stderr (-log-format text|json):
// replan/barrier summaries, slow sampled requests (-slow-ms threshold),
// and SLO breach/recovery transitions from the built-in watchdog, whose
// verdicts are also exported as revmaxd_slo_* metrics and summarized in
// /healthz. Log records carry trace_id/span_id when the work was
// traced, and shard=<k> in sharded mode.
//
//	curl 'localhost:8372/v1/recommend?user=7&t=1'
//	curl -d '{"user":7,"item":3,"t":1,"adopted":true}' localhost:8372/v1/adopt
//
// With -debug-addr a second listener serves the Go pprof suite
// (/debug/pprof/) plus mirrors of /metrics and /debug/traces — keep it
// on localhost or a management network; it is separate from -addr
// precisely so the public API surface never exposes profiling.
//
// Durability. With -data-dir, every state mutation is appended to a
// CRC-checksummed write-ahead log before it is applied, background
// snapshots compact the log (-snapshot-interval), and on boot the
// daemon recovers from the newest valid snapshot plus the WAL tail —
// tolerating a torn final record, so even kill -9 loses at most the
// events after the last fsync (-wal-sync policy; see the README's
// fsync table). Graceful shutdown (SIGINT/SIGTERM) drains the
// adoption-feedback queue, fsyncs the log, and seals a final snapshot.
//
// The legacy -snapshot flag is the in-memory warm-restart path (write
// one image on shutdown, restore it on boot); it is mutually exclusive
// with -data-dir, which strictly supersedes it.
//
// Scale-out. With -shards N (N ≥ 2) the daemon stripes its users across
// N engine shards behind a cross-shard stock/quota coordinator
// (internal/cluster): same endpoints, same answers — /v1/stats
// aggregates the fleet and /metrics carries a shard label per series.
// Under -data-dir each shard logs to shard-<k>/ and the coordinator
// ledger to coord/, and boot recovers all of them. The shard count is
// part of the durable layout, so reboots must keep the same -shards.
//
// Cluster barriers run themselves: every -replan-every adoptions and
// every /v1/advance trigger a coordinated reconcile+replan, and
// -flush-interval adds a wall-clock floor so a trickle of adoptions
// below the cadence still reaches the coordinator's stock ledger and
// the planner within that period.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/solver"
	"repro/internal/store"
)

// serving is the daemon-lifecycle surface shared by a single
// serve.Engine and a sharded cluster.Cluster: everything run and
// drainAndStop need after boot.
type serving interface {
	Stats() serve.Stats
	Sync() error
	Err() error
	Close()
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/--help: usage already printed, exit 0
		}
		fmt.Fprintf(os.Stderr, "revmaxd: %v\n", err)
		os.Exit(1)
	}
}

// run parses args, boots the engine, and serves until a signal or a
// fatal server error. It is the testable entry point: flag errors and
// invalid configurations return before anything binds a port.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("revmaxd", flag.ContinueOnError)
	// Buffer the flag package's output: -h/--help usage is copied to
	// stdout (exit 0), while parse errors are reported exactly once —
	// by main, on stderr — instead of also spamming usage onto stdout.
	var usage bytes.Buffer
	fs.SetOutput(&usage)
	addr := fs.String("addr", ":8372", "listen address")
	dsName := fs.String("dataset", "amazon", "dataset: "+strings.Join(dataset.Names(), " | "))
	scale := fs.Float64("scale", 0.01, "dataset scale (1.0 = paper scale)")
	seed := fs.Uint64("seed", 42, "random seed")
	users := fs.Int("users", 2000, "user count (synthetic dataset only)")
	algoName := fs.String("algo", "GG", "planning algorithm: any solver-registry name or alias")
	perms := fs.Int("perms", 5, "RL-Greedy permutations")
	workers := fs.Int("workers", 0, "parallel-algorithm workers (g-greedy-parallel, rl-greedy-parallel; 0 = GOMAXPROCS)")
	cuts := fs.String("cuts", "", "staged variants: comma-separated sub-horizon cut-offs, e.g. 2,4")
	loadInstance := fs.String("load-instance", "", "load the instance from a JSON file instead of generating one")
	snapshot := fs.String("snapshot", "", "legacy snapshot file: restore from it at boot if present, write it on shutdown (mutually exclusive with -data-dir)")
	replanEvery := fs.Int("replan-every", 32, "adoptions per background replan")
	warmStart := fs.Bool("warm-start", false, "seed each replan with the previous plan's still-feasible triples (lower replan latency; plans may differ from cold solves)")
	incremental := fs.Bool("incremental", false, "replan through a persistent solver session with delta-driven invalidation: byte-identical plans, replan latency flat in the event rate (requires a G-Greedy -algo, composes with -warm-start)")
	shards := fs.Int("shards", 1, "engine shard count: 1 serves from a single engine, ≥ 2 stripes users across a sharded cluster with a cross-shard stock/quota coordinator")
	stripes := fs.Int("stripes", 0, "per-engine user-store lock-stripe count (0 = next pow2 ≥ GOMAXPROCS)")
	dataDir := fs.String("data-dir", "", "durable state directory (write-ahead log + snapshots); recovery happens from here on boot")
	debugAddr := fs.String("debug-addr", "", "listen address for the debug server (pprof, /metrics, /debug/traces); empty disables")
	walSync := fs.String("wal-sync", "batch", "WAL fsync policy: always | batch | none")
	snapInterval := fs.Duration("snapshot-interval", 5*time.Minute, "background snapshot + log compaction period with -data-dir (0 disables; a final snapshot is still written on shutdown)")
	flushInterval := fs.Duration("flush-interval", time.Second, "sharded mode: maximum wall-clock delay before buffered adoptions reach a coordinated reconcile/replan barrier (0 disables the ticker; adoption-count and advance barriers still fire)")
	logFormat := fs.String("log-format", "text", "structured log format on stderr: text | json")
	slowMS := fs.Int("slow-ms", 0, "log sampled requests slower than this many milliseconds (0 disables slow-request logging)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprint(stdout, usage.String())
		}
		return err
	}

	// Resolve the algorithm up front: a typo in -algo must fail in
	// milliseconds with the registry's name list, not after dataset
	// generation.
	if _, err := solver.Lookup(*algoName); err != nil {
		return err
	}
	if *dataDir != "" && *snapshot != "" {
		return errors.New("-snapshot and -data-dir are mutually exclusive (the data dir already snapshots on shutdown)")
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d out of range (want ≥ 1)", *shards)
	}
	if *shards >= 2 && *snapshot != "" {
		return errors.New("-snapshot is the single-engine warm-restart path; sharded clusters persist through -data-dir")
	}
	if *flushInterval < 0 {
		return fmt.Errorf("-flush-interval %v out of range (want ≥ 0; 0 disables the periodic barrier)", *flushInterval)
	}
	if *slowMS < 0 {
		return fmt.Errorf("-slow-ms %d out of range (want ≥ 0; 0 disables slow-request logging)", *slowMS)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		return err
	}
	policy, err := store.ParseSyncPolicy(*walSync)
	if err != nil {
		return err
	}
	cutList, err := parseCuts(*cuts)
	if err != nil {
		return err
	}
	opts := solver.Options{Perms: *perms, Seed: *seed + 1, Workers: *workers, Cuts: cutList}
	var durability *serve.Durability
	if *dataDir != "" {
		durability = &serve.Durability{
			Dir:  *dataDir,
			Sync: policy,
			// HTTP clients have no flush verb, so nothing would ever drive
			// the batch policy's group commit between checkpoints; the
			// ticker bounds the window in which acknowledged events are
			// not yet on disk (fsync under batch, flush-to-kernel under
			// none so even kill -9 cannot shed user-space buffers).
			SyncInterval:     200 * time.Millisecond,
			SnapshotInterval: *snapInterval,
		}
	}

	var (
		svc        serving
		handler    http.Handler
		stopTicker func()
	)
	if *shards >= 2 {
		ccfg := cluster.Config{
			Shards:        *shards,
			Algorithm:     *algoName,
			Solver:        opts,
			WarmStart:     *warmStart,
			Incremental:   *incremental,
			EngineStripes: *stripes,
			ReplanEvery:   *replanEvery,
			Durability:    durability,
			Logger:        logger,
			SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
		}
		cl, err := bootCluster(ccfg, *loadInstance, *dsName, *scale, *seed, *users, stdout)
		if err != nil {
			return err
		}
		if *flushInterval > 0 {
			stopTicker = startFlushTicker(cl, *flushInterval)
		}
		svc, handler = cl, cluster.Handler(cl)
	} else {
		cfg := serve.Config{
			Algorithm:     *algoName,
			Solver:        opts,
			WarmStart:     *warmStart,
			Incremental:   *incremental,
			Shards:        *stripes,
			ReplanEvery:   *replanEvery,
			Durability:    durability,
			Logger:        logger,
			SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
		}
		engine, err := bootEngine(cfg, *snapshot, *loadInstance, *dsName, *scale, *seed, *users, stdout)
		if err != nil {
			return err
		}
		svc, handler = engine, serve.Handler(engine)
	}
	defer svc.Close()

	st := svc.Stats()
	fmt.Fprintf(stdout, "revmaxd: %d users, %d items, T=%d, k=%d; plan rev %d with %d triples (expected revenue %.2f), %d shards, algo %s\n",
		st.Users, st.Items, st.Horizon, st.K, st.PlanRevision, st.PlannedTriples, st.PlanRevenue, st.Shards, *algoName)

	server := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	fmt.Fprintf(stdout, "revmaxd: listening on %s\n", *addr)

	var debugServer *http.Server
	if *debugAddr != "" {
		debugServer = &http.Server{Addr: *debugAddr, Handler: debugHandler(handler)}
		// Debug-listener failures are fatal like main-listener ones: an
		// operator who asked for pprof should not silently run without it.
		go func() { errc <- debugServer.ListenAndServe() }()
		fmt.Fprintf(stdout, "revmaxd: debug server (pprof, /metrics, /debug/traces) on %s\n", *debugAddr)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	var serveErr error
	select {
	case sig := <-sigc:
		fmt.Fprintf(stdout, "revmaxd: %v — shutting down\n", sig)
	case err := <-errc:
		// Listener died, but the engine is healthy: still run the full
		// shutdown sequence so accumulated feedback reaches the snapshot.
		fmt.Fprintf(os.Stderr, "revmaxd: server error: %v — shutting down\n", err)
		serveErr = err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "revmaxd: shutdown: %v\n", err)
	}
	if debugServer != nil {
		if err := debugServer.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "revmaxd: debug shutdown: %v\n", err)
		}
	}
	if stopTicker != nil {
		stopTicker()
	}
	if err := drainAndStop(svc, *snapshot, stdout); err != nil {
		return err
	}
	return serveErr
}

// startFlushTicker drives the cluster's coordinated barrier on a
// wall-clock cadence, bounding how stale the coordinator's stock
// ledger and the served plan can get when adoption traffic trickles in
// below the -replan-every count trigger. Flush is a no-op when nothing
// is dirty, so an idle cluster pays only a mutex round-trip per tick.
// The returned stop function waits for the driver to exit and must be
// called before drainAndStop so no barrier races the final seal.
func startFlushTicker(cl *cluster.Cluster, every time.Duration) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				cl.Flush()
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// drainAndStop is the graceful-shutdown tail, run after the HTTP
// listener stops accepting: it drains the adoption-feedback queue
// (every accepted event applied and replanned over — cluster-wide when
// sharded), forces the WAL to stable storage, writes the legacy
// snapshot file if requested, and closes the serving side — which, when
// durable, seals final snapshots and compacts the logs so the next boot
// recovers warm. It returns the first durability error, so a daemon
// that silently lost its log exits non-zero instead of pretending the
// state is safe.
func drainAndStop(svc serving, snapshotPath string, stdout io.Writer) error {
	syncErr := svc.Sync()
	if snapshotPath != "" {
		// Flag validation only lets -snapshot through in single-engine
		// mode, so the assertion is structural, not reachable by users.
		engine, ok := svc.(*serve.Engine)
		if !ok {
			return errors.New("legacy snapshots are single-engine only")
		}
		if err := writeSnapshot(engine, snapshotPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "revmaxd: snapshot written to %s\n", snapshotPath)
	}
	svc.Close()
	if syncErr != nil {
		return fmt.Errorf("draining state on shutdown: %w", syncErr)
	}
	if err := svc.Err(); err != nil {
		return fmt.Errorf("sealing durable state on shutdown: %w", err)
	}
	if st := svc.Stats(); st.Durable {
		fmt.Fprintf(stdout, "revmaxd: durable state sealed at wal lsn %d\n", st.WALNextLSN)
	}
	return nil
}

// bootEngine picks the boot path: durable recovery when the data dir
// holds state, a legacy snapshot-file restore when one exists, and
// otherwise a cold boot — building the instance (from file or
// generator) and planning fresh.
func bootEngine(cfg serve.Config, snapshot, loadInstance, dsName string, scale float64, seed uint64, users int, stdout io.Writer) (*serve.Engine, error) {
	if d := cfg.Durability; d != nil && d.Dir != "" {
		if store.DirHasState(d.Dir) {
			// Recovery: the instance lives in the durable snapshot — the
			// dataset flags are ignored rather than re-generating a world
			// that would not match the logged events.
			engine, err := serve.Open(nil, cfg)
			if err != nil {
				return nil, fmt.Errorf("recover %s: %w", d.Dir, err)
			}
			fmt.Fprintf(stdout, "revmaxd: recovered durable state from %s (wal lsn %d)\n",
				d.Dir, engine.Stats().WALNextLSN)
			return engine, nil
		}
		in, err := buildInstance(loadInstance, dsName, scale, seed, users)
		if err != nil {
			return nil, err
		}
		engine, err := serve.Open(in, cfg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(stdout, "revmaxd: durable state initialized in %s\n", d.Dir)
		return engine, nil
	}
	if snapshot != "" {
		if f, err := os.Open(snapshot); err == nil {
			defer f.Close()
			engine, rerr := serve.Restore(f, cfg)
			if rerr != nil {
				return nil, fmt.Errorf("restore %s: %w", snapshot, rerr)
			}
			fmt.Fprintf(stdout, "revmaxd: restored warm from %s\n", snapshot)
			return engine, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	in, err := buildInstance(loadInstance, dsName, scale, seed, users)
	if err != nil {
		return nil, err
	}
	return serve.NewEngine(in, cfg)
}

// bootCluster is bootEngine's sharded twin: recover the whole fleet
// (shards + coordinator ledger) when the data dir holds state,
// otherwise build the instance and boot fresh. The legacy snapshot file
// has no cluster form, so there is no restore branch.
func bootCluster(cfg cluster.Config, loadInstance, dsName string, scale float64, seed uint64, users int, stdout io.Writer) (*cluster.Cluster, error) {
	if d := cfg.Durability; d != nil && d.Dir != "" && store.DirHasState(filepath.Join(d.Dir, "coord")) {
		cl, err := cluster.Open(nil, cfg)
		if err != nil {
			return nil, fmt.Errorf("recover %s: %w", d.Dir, err)
		}
		fmt.Fprintf(stdout, "revmaxd: recovered %d-shard durable cluster from %s\n", cl.Shards(), d.Dir)
		return cl, nil
	}
	in, err := buildInstance(loadInstance, dsName, scale, seed, users)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.Open(in, cfg)
	if err != nil {
		return nil, err
	}
	if d := cfg.Durability; d != nil && d.Dir != "" {
		fmt.Fprintf(stdout, "revmaxd: %d-shard durable cluster initialized in %s\n", cl.Shards(), d.Dir)
	}
	return cl, nil
}

func buildInstance(loadInstance, dsName string, scale float64, seed uint64, users int) (*model.Instance, error) {
	if loadInstance != "" {
		f, err := os.Open(loadInstance)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return codec.DecodeInstance(f)
	}
	ds, err := dataset.Build(dsName, dataset.Config{Seed: seed, Scale: scale, Users: users})
	if err != nil {
		return nil, err
	}
	return ds.Instance, nil
}

func writeSnapshot(engine *serve.Engine, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := engine.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// parseCuts parses "2,4" into []int{2, 4}, mirroring the revmax CLI.
func parseCuts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("invalid -cuts entry %q (want positive integers, e.g. 2,4)", part)
		}
		out = append(out, c)
	}
	return out, nil
}
