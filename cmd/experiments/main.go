// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all -scale 0.01 -seed 42 -perms 5
//	experiments -run table1,fig1,fig6
//
// Valid -run targets: table1, table2, fig1..fig7, randprice, all.
// -scale 1.0 reproduces at full paper scale (slow, memory hungry).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

// renderer is implemented by every experiment result.
type renderer interface{ Render() string }

func main() {
	run := flag.String("run", "all", "comma-separated experiments: table1,table2,fig1..fig7,randprice,ablation,all")
	scale := flag.Float64("scale", 0.01, "dataset scale factor (1.0 = paper scale)")
	seed := flag.Uint64("seed", 42, "random seed")
	perms := flag.Int("perms", 5, "RL-Greedy permutations (paper uses 20)")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Perms: *perms}
	runners := map[string]func(experiments.Config) (renderer, error){
		"table1":    wrap(experiments.Table1),
		"table2":    wrap(experiments.Table2),
		"fig1":      wrap(experiments.Figure1),
		"fig2":      wrap(experiments.Figure2),
		"fig3":      wrap(experiments.Figure3),
		"fig4":      wrap(experiments.Figure4),
		"fig5":      wrap(experiments.Figure5),
		"fig6":      wrap(experiments.Figure6),
		"fig7":      wrap(experiments.Figure7),
		"randprice": wrap(experiments.RandomPrices),
		"ablation":  wrap(experiments.Ablation),
	}
	order := []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "table2", "fig6", "fig7", "randprice", "ablation"}

	var targets []string
	if *run == "all" {
		targets = order
	} else {
		for _, t := range strings.Split(*run, ",") {
			t = strings.TrimSpace(strings.ToLower(t))
			if t == "" {
				continue
			}
			if _, ok := runners[t]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: %s, all)\n", t, strings.Join(order, ", "))
				os.Exit(2)
			}
			targets = append(targets, t)
		}
	}

	for _, t := range targets {
		res, err := runners[t](cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", t, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
	}
}

// wrap adapts a typed runner to the renderer interface.
func wrap[T renderer](f func(experiments.Config) (T, error)) func(experiments.Config) (renderer, error) {
	return func(cfg experiments.Config) (renderer, error) {
		r, err := f(cfg)
		return r, err
	}
}
