// Command simulate has two modes.
//
// Replay mode (the original): replay a saved strategy against a saved
// instance with the Monte-Carlo adoption simulator, reporting the
// realized revenue distribution and comparing it to the analytic
// expectation:
//
//	revmax -dataset amazon -save-instance inst.json -save-strategy strat.json
//	simulate -instance inst.json -strategy strat.json -runs 20000 -stock
//
// Scenario mode: run one or all of the built-in workload archetypes
// (internal/scenario) through both the open-loop and closed-loop
// paths and report structured, deterministic Outcome JSON:
//
//	simulate -list-scenarios
//	simulate -scenario flash-sale -seed 7 -json
//	simulate -scenario all -seed 1 -json -out BENCH_scenarios.json
//
// With -canonical the non-deterministic timing section is zeroed, so
// the bytes written for a fixed (scenario, seed) never change — the
// form golden tests compare.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/codec"
	"repro/internal/model"
	"repro/internal/poibin"
	"repro/internal/revenue"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/solver"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/--help: usage already printed, exit 0
		}
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses args and writes all
// regular output to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	// Buffer the flag package's output: -h/--help usage is copied to
	// stdout (exit 0), while parse errors are reported exactly once —
	// by main, on stderr — instead of also spamming usage onto stdout.
	var usage bytes.Buffer
	fs.SetOutput(&usage)
	instPath := fs.String("instance", "", "instance JSON file (replay mode)")
	stratPath := fs.String("strategy", "", "strategy JSON file (replay mode)")
	runs := fs.Int("runs", 10000, "Monte-Carlo replications (replay mode)")
	seed := fs.Uint64("seed", 1, "simulation / scenario seed")
	stock := fs.Bool("stock", false, "simulate inventory depletion (Definition 4 semantics)")
	scen := fs.String("scenario", "", "scenario name or 'all' (scenario mode)")
	algo := fs.String("algo", "", "scenario mode: override the planning algorithm (any solver-registry name; empty keeps each scenario's own)")
	list := fs.Bool("list-scenarios", false, "list built-in scenarios and exit")
	asJSON := fs.Bool("json", false, "scenario mode: emit JSON reports instead of text")
	canonical := fs.Bool("canonical", false, "scenario mode: zero the timing section (deterministic bytes)")
	outPath := fs.String("out", "", "scenario mode: write the report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprint(stdout, usage.String())
		}
		return err
	}

	switch {
	case *list:
		for _, sc := range scenario.Catalog() {
			fmt.Fprintf(stdout, "%-24s %s\n", sc.Name, sc.Description)
		}
		return nil
	case *scen != "":
		return runScenarios(*scen, *algo, *seed, *asJSON, *canonical, *outPath, stdout)
	case *instPath != "" && *stratPath != "":
		return runReplay(*instPath, *stratPath, *runs, *seed, *stock, stdout)
	default:
		return fmt.Errorf("either -scenario (scenario mode) or -instance and -strategy (replay mode) are required")
	}
}

// runScenarios executes the named scenario ("all" for the whole
// catalog), optionally overriding the planning algorithm, and renders
// the reports.
func runScenarios(name, algo string, seed uint64, asJSON, canonical bool, outPath string, stdout io.Writer) error {
	if algo != "" {
		// Fail fast on a typo, before any scenario work.
		if _, err := solver.Lookup(algo); err != nil {
			return err
		}
	}
	var scs []scenario.Scenario
	if name == "all" {
		scs = scenario.Catalog()
	} else {
		sc, err := scenario.ByName(name)
		if err != nil {
			return err
		}
		scs = []scenario.Scenario{sc}
	}
	if algo != "" {
		for i := range scs {
			scs[i].Algorithm = algo
		}
	}
	var r scenario.Runner
	outcomes := make([]scenario.Outcome, 0, len(scs))
	for _, sc := range scs {
		out, err := r.Run(sc, seed)
		if err != nil {
			return err
		}
		if canonical {
			out = out.Canonical()
		}
		outcomes = append(outcomes, out)
	}

	w := stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if len(outcomes) == 1 {
			return enc.Encode(outcomes[0])
		}
		return enc.Encode(outcomes)
	}
	for _, out := range outcomes {
		fmt.Fprintf(w, "scenario             : %s (%s)\n", out.Scenario, out.Description)
		fmt.Fprintf(w, "instance             : %d users, %d items, T=%d, K=%d, %d candidates, %d mutations\n",
			out.Users, out.Items, out.Horizon, out.K, out.Candidates, out.Mutations)
		fmt.Fprintf(w, "open-loop revenue    : %.2f realized (planned %.2f, sd %.2f, %d runs)\n",
			out.OpenLoop.MeanRevenue, out.OpenLoop.PlannedRevenue, out.OpenLoop.StdDev, out.OpenLoop.Replications)
		fmt.Fprintf(w, "closed-loop revenue  : %.2f realized (sd %.2f, %d trajectories)\n",
			out.ClosedLoop.MeanRevenue, out.ClosedLoop.StdDev, out.ClosedLoop.Replications)
		fmt.Fprintf(w, "closed-loop gain     : %+.1f%% (regret vs open loop %.2f)\n",
			out.ClosedLoopGainPct, out.RegretVsOpenLoop)
		fmt.Fprintf(w, "stock utilization    : open %.1f%%, closed %.1f%%\n",
			100*out.OpenLoop.StockUtilization, 100*out.ClosedLoop.StockUtilization)
		fmt.Fprintf(w, "invariants           : valid=%v capacity=%d display=%d adopted-class=%d closed>=open=%v\n",
			out.Invariants.OpenLoopStrategyValid, out.Invariants.CapacityViolations,
			out.Invariants.DisplayViolations, out.Invariants.AdoptedClassRecs, out.Invariants.ClosedBeatsOpen)
		fmt.Fprintf(w, "timing               : open %.1fms, closed %.1fms, batch p99 %dus, %d replans\n\n",
			out.Timing.OpenLoopMillis, out.Timing.ClosedLoopMillis,
			out.Timing.P99BatchMicros, out.Timing.Replans)
	}
	return nil
}

// runReplay is the original instance+strategy replay mode.
func runReplay(instPath, stratPath string, runs int, seed uint64, stock bool, stdout io.Writer) error {
	in, err := loadInstance(instPath)
	if err != nil {
		return err
	}
	s, err := loadStrategy(stratPath)
	if err != nil {
		return err
	}
	if err := in.CheckValid(s); err != nil {
		fmt.Fprintf(stdout, "note: strategy violates hard constraints (%v); simulating anyway\n", err)
	}

	out := sim.Simulate(in, s, sim.Options{Runs: runs, Seed: seed, EnforceStock: stock})
	expect := revenue.Revenue(in, s)
	fmt.Fprintf(stdout, "strategy size        : %d triples\n", s.Len())
	fmt.Fprintf(stdout, "analytic Rev(S)      : %.2f\n", expect)
	if stock {
		eff := revenue.EffectiveRevenue(in, s, poibin.ExactOracle{})
		fmt.Fprintf(stdout, "effective revenue    : %.2f (Definition 4)\n", eff)
	}
	fmt.Fprintf(stdout, "simulated mean       : %.2f (+/- %.2f at 95%%)\n",
		out.MeanRevenue, 1.96*out.StdDev/math.Sqrt(float64(out.Runs)))
	fmt.Fprintf(stdout, "per-run sd           : %.2f\n", out.StdDev)
	fmt.Fprintf(stdout, "mean adoptions       : %.2f\n", out.MeanAdoptions)
	if stock {
		fmt.Fprintf(stdout, "stock-out losses     : %d attempts across %d runs\n", out.StockOuts, out.Runs)
	}
	return nil
}

func loadInstance(path string) (*model.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return codec.DecodeInstance(f)
}

func loadStrategy(path string) (*model.Strategy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return codec.DecodeStrategy(f)
}
