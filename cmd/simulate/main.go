// Command simulate replays a saved strategy against a saved instance
// with the Monte-Carlo adoption simulator, reporting the realized
// revenue distribution and comparing it to the analytic expectation.
//
// Usage:
//
//	revmax -dataset amazon -save-instance inst.json -save-strategy strat.json
//	simulate -instance inst.json -strategy strat.json -runs 20000 -stock
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/codec"
	"repro/internal/model"
	"repro/internal/poibin"
	"repro/internal/revenue"
	"repro/internal/sim"
)

func main() {
	instPath := flag.String("instance", "", "instance JSON file (required)")
	stratPath := flag.String("strategy", "", "strategy JSON file (required)")
	runs := flag.Int("runs", 10000, "Monte-Carlo replications")
	seed := flag.Uint64("seed", 1, "simulation seed")
	stock := flag.Bool("stock", false, "simulate inventory depletion (Definition 4 semantics)")
	flag.Parse()

	if *instPath == "" || *stratPath == "" {
		fmt.Fprintln(os.Stderr, "simulate: -instance and -strategy are required")
		os.Exit(2)
	}
	in, err := loadInstance(*instPath)
	if err != nil {
		fail(err)
	}
	s, err := loadStrategy(*stratPath)
	if err != nil {
		fail(err)
	}
	if err := in.CheckValid(s); err != nil {
		fmt.Printf("note: strategy violates hard constraints (%v); simulating anyway\n", err)
	}

	out := sim.Simulate(in, s, sim.Options{Runs: *runs, Seed: *seed, EnforceStock: *stock})
	expect := revenue.Revenue(in, s)
	fmt.Printf("strategy size        : %d triples\n", s.Len())
	fmt.Printf("analytic Rev(S)      : %.2f\n", expect)
	if *stock {
		eff := revenue.EffectiveRevenue(in, s, poibin.ExactOracle{})
		fmt.Printf("effective revenue    : %.2f (Definition 4)\n", eff)
	}
	fmt.Printf("simulated mean       : %.2f (+/- %.2f at 95%%)\n",
		out.MeanRevenue, 1.96*out.StdDev/math.Sqrt(float64(out.Runs)))
	fmt.Printf("per-run sd           : %.2f\n", out.StdDev)
	fmt.Printf("mean adoptions       : %.2f\n", out.MeanAdoptions)
	if *stock {
		fmt.Printf("stock-out losses     : %d attempts across %d runs\n", out.StockOuts, out.Runs)
	}
}

func loadInstance(path string) (*model.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return codec.DecodeInstance(f)
}

func loadStrategy(path string) (*model.Strategy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return codec.DecodeStrategy(f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simulate:", err)
	os.Exit(1)
}
