package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestListScenarios: the catalog renders one line per archetype.
func TestListScenarios(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list-scenarios"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"flash-sale", "inventory-shock", "seasonal-drift",
		"cold-start-burst", "price-war", "adversarial-saturation"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("scenario listing missing %q:\n%s", name, buf.String())
		}
	}
}

// TestRunRequiresMode: no mode flags is a usage error.
func TestRunRequiresMode(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("expected a usage error with no flags")
	}
	if err := run([]string{"-scenario", "no-such"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected an error for an unknown scenario")
	}
}

// TestScenarioGolden runs one scenario end to end through the CLI and
// byte-compares the canonical JSON report against a golden file: the
// determinism contract, enforced at the binary's boundary. The golden
// bytes are platform-pinned (generated on amd64; FMA contraction can
// flip last bits on arm64/ppc64). Regenerate with:
// go test ./cmd/simulate -run TestScenarioGolden -update
func TestScenarioGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario runs are not short")
	}
	var buf bytes.Buffer
	if err := run([]string{"-scenario", "flash-sale", "-seed", "7", "-json", "-canonical"}, &buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "flash-sale.seed7.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("canonical scenario report drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestScenarioAllJSON: -scenario all emits a well-formed JSON array
// with one outcome per catalog entry and zeroed timing under
// -canonical.
func TestScenarioAllJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario runs are not short")
	}
	var buf bytes.Buffer
	if err := run([]string{"-scenario", "all", "-seed", "3", "-json", "-canonical"}, &buf); err != nil {
		t.Fatal(err)
	}
	var outcomes []struct {
		Scenario string `json:"scenario"`
		Timing   struct {
			OpenLoopMillis float64 `json:"open_loop_millis"`
			Replans        int64   `json:"replans"`
		} `json:"timing"`
	}
	if err := json.Unmarshal(buf.Bytes(), &outcomes); err != nil {
		t.Fatalf("report is not a JSON array: %v", err)
	}
	if len(outcomes) < 6 {
		t.Fatalf("report has %d outcomes, want >= 6", len(outcomes))
	}
	for _, o := range outcomes {
		if o.Timing.OpenLoopMillis != 0 || o.Timing.Replans != 0 {
			t.Errorf("%s: -canonical left timing data in the report", o.Scenario)
		}
	}
}

// TestOutFileWriting: -out writes the report to the named file.
func TestOutFileWriting(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario runs are not short")
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := run([]string{"-scenario", "inventory-shock", "-seed", "2", "-json", "-out", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var outcome struct {
		Scenario string `json:"scenario"`
	}
	if err := json.Unmarshal(data, &outcome); err != nil {
		t.Fatal(err)
	}
	if outcome.Scenario != "inventory-shock" {
		t.Fatalf("report names scenario %q", outcome.Scenario)
	}
}
