package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"
)

// TestHelpExitsZero: -h prints usage and returns flag.ErrHelp, which
// main maps to exit code 0 (the cmd/simulate convention, now shared by
// every cmd).
func TestHelpExitsZero(t *testing.T) {
	for _, arg := range []string{"-h", "--help"} {
		var buf bytes.Buffer
		err := run([]string{arg}, &buf)
		if !errors.Is(err, flag.ErrHelp) {
			t.Fatalf("run(%s) = %v, want flag.ErrHelp", arg, err)
		}
		if !strings.Contains(buf.String(), "-algo") {
			t.Fatalf("usage output missing flags:\n%s", buf.String())
		}
	}
}

// TestUnknownAlgorithmFailsFast: a bad -algo fails before dataset
// generation, with the registry's known-name list in the error.
func TestUnknownAlgorithmFailsFast(t *testing.T) {
	err := run([]string{"-algo", "definitely-not-real"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if !strings.Contains(err.Error(), "g-greedy") {
		t.Fatalf("error does not list known algorithms: %v", err)
	}
}

// TestListAlgos: -list-algos prints the registry, one name per line.
func TestListAlgos(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list-algos"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"g-greedy", "rl-greedy", "sl-greedy", "top-revenue"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("-list-algos missing %q:\n%s", want, buf.String())
		}
	}
}

// TestBadFlags: invalid -cuts and -cap fail with usage errors.
func TestBadFlags(t *testing.T) {
	if err := run([]string{"-cuts", "2,x"}, &bytes.Buffer{}); err == nil {
		t.Fatal("invalid -cuts accepted")
	}
	if err := run([]string{"-cap", "zipf"}, &bytes.Buffer{}); err == nil {
		t.Fatal("invalid -cap accepted")
	}
}

// TestEndToEndSynthetic: a tiny synthetic run through the registry
// produces the report.
func TestEndToEndSynthetic(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a dataset")
	}
	var buf bytes.Buffer
	err := run([]string{"-dataset", "synthetic", "-users", "60", "-scale", "0.002", "-algo", "rl-greedy", "-perms", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"expected revenue", "selections", "per time step"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
