// Command revmax runs a RevMax recommendation algorithm on a generated
// dataset and reports revenue, runtime, and strategy statistics.
//
// Usage:
//
//	revmax -dataset amazon -algo g-greedy -scale 0.01
//	revmax -dataset epinions -algo rl-greedy -perms 20 -timeout 30s
//	revmax -dataset synthetic -users 5000 -algo sl-greedy
//	revmax -algo rl-greedy-parallel -workers 8 -progress
//	revmax -list-algos
//
// Algorithms are resolved through the solver registry (revmax.List());
// the paper's legend spellings (GG, GG-No, SLG, RLG, TopRev, TopRat)
// keep working as aliases. -timeout bounds the run with a context
// deadline; a run cut short exits with an error instead of printing a
// partial strategy.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/solver"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/--help: usage already printed, exit 0
		}
		fmt.Fprintln(os.Stderr, "revmax:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses args and writes all
// regular output to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("revmax", flag.ContinueOnError)
	// Buffer the flag package's output: -h/--help usage is copied to
	// stdout (exit 0), while parse errors are reported exactly once —
	// by main, on stderr — instead of also spamming usage onto stdout.
	var usage bytes.Buffer
	fs.SetOutput(&usage)
	dsName := fs.String("dataset", "amazon", "dataset: "+strings.Join(dataset.Names(), " | "))
	algo := fs.String("algo", "GG", "algorithm name or alias (see -list-algos)")
	listAlgos := fs.Bool("list-algos", false, "list registered algorithms and exit")
	scale := fs.Float64("scale", 0.01, "dataset scale (1.0 = paper scale)")
	seed := fs.Uint64("seed", 42, "random seed")
	perms := fs.Int("perms", 5, "RL-Greedy permutations")
	workers := fs.Int("workers", 0, "rl-greedy-parallel workers (0 = GOMAXPROCS)")
	cuts := fs.String("cuts", "", "staged variants: comma-separated sub-horizon cut-offs, e.g. 2,4")
	timeout := fs.Duration("timeout", 0, "abort the solve after this long (0 = no deadline)")
	progress := fs.Bool("progress", false, "report solve progress on stderr")
	users := fs.Int("users", 2000, "user count (synthetic dataset only)")
	beta := fs.Float64("beta", 0, "uniform saturation factor (0 = random U[0,1])")
	capDist := fs.String("cap", "normal", "capacity distribution: normal | exponential | power | uniform")
	singleton := fs.Bool("singleton", false, "put every item in its own class")
	loadInstance := fs.String("load-instance", "", "load the instance from a JSON file instead of generating one")
	saveInstance := fs.String("save-instance", "", "write the generated instance to a JSON file")
	saveStrategy := fs.String("save-strategy", "", "write the chosen strategy to a JSON file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprint(stdout, usage.String())
		}
		return err
	}

	if *listAlgos {
		for _, name := range solver.List() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}

	// Resolve the algorithm before any expensive generation so a typo
	// fails in milliseconds with the registry's name list.
	if _, err := solver.Lookup(*algo); err != nil {
		return err
	}
	cutList, err := parseCuts(*cuts)
	if err != nil {
		return err
	}
	cd, err := dataset.ParseCapacityDist(*capDist)
	if err != nil {
		return err
	}

	ds, err := loadOrBuild(*loadInstance, *dsName, dataset.Config{
		Seed: *seed, Scale: *scale, Users: *users, UniformBeta: *beta,
		CapacityDist: cd, SingletonClasses: *singleton,
	})
	if err != nil {
		return err
	}
	in := ds.Instance
	if *saveInstance != "" {
		if err := writeFileWith(*saveInstance, func(w *os.File) error {
			return codec.EncodeInstance(w, in)
		}); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "instance saved to %s\n", *saveInstance)
	}
	fmt.Fprintf(stdout, "dataset %s: %d users, %d items, %d classes, %d candidate triples, T=%d, k=%d\n",
		ds.Name, in.NumUsers, in.NumItems(), in.NumClasses(), in.NumCandidates(), in.T, in.K)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := solver.Options{
		Algorithm: *algo,
		Perms:     *perms,
		Seed:      *seed + 1,
		Workers:   *workers,
		Cuts:      cutList,
		Rating:    ds.Rating,
	}
	if *progress {
		opts.Progress = func(p solver.Progress) {
			if p.Total > 0 && (p.Done == p.Total || p.Done%100 == 0 || p.Total <= 100) {
				fmt.Fprintf(os.Stderr, "revmax: %s %d/%d best=%.2f\n", p.Algorithm, p.Done, p.Total, p.Best)
			}
		}
	}

	start := time.Now()
	res, err := solver.Solve(ctx, in, opts)
	if err != nil {
		return fmt.Errorf("solve %s: %w", *algo, err)
	}
	elapsed := time.Since(start)

	fmt.Fprintf(stdout, "algorithm      : %s\n", *algo)
	fmt.Fprintf(stdout, "expected revenue: %.2f\n", res.Revenue)
	fmt.Fprintf(stdout, "selections     : %d triples\n", res.Strategy.Len())
	fmt.Fprintf(stdout, "runtime        : %v\n", elapsed.Round(time.Millisecond))
	if res.Recomputations > 0 {
		fmt.Fprintf(stdout, "lazy recomputes: %d\n", res.Recomputations)
	}
	if err := in.CheckValid(res.Strategy); err != nil {
		return fmt.Errorf("output strategy invalid: %w", err)
	}
	// Per-time-step breakdown.
	perT := make(map[model.TimeStep]int)
	for _, z := range res.Strategy.Triples() {
		perT[z.T]++
	}
	fmt.Fprint(stdout, "per time step  :")
	for t := model.TimeStep(1); int(t) <= in.T; t++ {
		fmt.Fprintf(stdout, " t%d=%d", t, perT[t])
	}
	fmt.Fprintln(stdout)
	if *saveStrategy != "" {
		if err := writeFileWith(*saveStrategy, func(w *os.File) error {
			return codec.EncodeStrategy(w, res.Strategy)
		}); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "strategy saved to %s\n", *saveStrategy)
	}
	return nil
}

// loadOrBuild reads the instance from a file when a path is given,
// otherwise generates the named dataset.
func loadOrBuild(loadInstance, dsName string, cfg dataset.Config) (*dataset.Dataset, error) {
	if loadInstance == "" {
		return dataset.Build(dsName, cfg)
	}
	f, err := os.Open(loadInstance)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	in, err := codec.DecodeInstance(f)
	if err != nil {
		return nil, err
	}
	return &dataset.Dataset{
		Name:     loadInstance,
		Instance: in,
		Rating:   func(model.UserID, model.ItemID) float64 { return 0 },
	}, nil
}

// parseCuts parses "2,4" into []int{2, 4}.
func parseCuts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("invalid -cuts entry %q (want positive integers, e.g. 2,4)", part)
		}
		out = append(out, c)
	}
	return out, nil
}

// writeFileWith creates path and runs write against it.
func writeFileWith(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
