// Command revmax runs a RevMax recommendation algorithm on a generated
// dataset and reports revenue, runtime, and strategy statistics.
//
// Usage:
//
//	revmax -dataset amazon -algo GG -scale 0.01
//	revmax -dataset epinions -algo RLG -perms 20
//	revmax -dataset synthetic -users 5000 -algo SLG
//
// Algorithms: GG, GG-No, SLG, RLG, TopRev, TopRat.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
)

func main() {
	dsName := flag.String("dataset", "amazon", "dataset: amazon | epinions | synthetic")
	algo := flag.String("algo", "GG", "algorithm: GG | GG-No | SLG | RLG | TopRev | TopRat")
	scale := flag.Float64("scale", 0.01, "dataset scale (1.0 = paper scale)")
	seed := flag.Uint64("seed", 42, "random seed")
	perms := flag.Int("perms", 5, "RL-Greedy permutations")
	users := flag.Int("users", 2000, "user count (synthetic dataset only)")
	beta := flag.Float64("beta", 0, "uniform saturation factor (0 = random U[0,1])")
	capDist := flag.String("cap", "normal", "capacity distribution: normal | exponential | power | uniform")
	singleton := flag.Bool("singleton", false, "put every item in its own class")
	loadInstance := flag.String("load-instance", "", "load the instance from a JSON file instead of generating one")
	saveInstance := flag.String("save-instance", "", "write the generated instance to a JSON file")
	saveStrategy := flag.String("save-strategy", "", "write the chosen strategy to a JSON file")
	flag.Parse()

	cd, err := parseCap(*capDist)
	if err != nil {
		fail(err)
	}
	dc := dataset.Config{
		Seed: *seed, Scale: *scale, UniformBeta: *beta,
		CapacityDist: cd, SingletonClasses: *singleton,
	}

	var ds *dataset.Dataset
	if *loadInstance != "" {
		f, ferr := os.Open(*loadInstance)
		if ferr != nil {
			fail(ferr)
		}
		in, derr := codec.DecodeInstance(f)
		f.Close()
		if derr != nil {
			fail(derr)
		}
		ds = &dataset.Dataset{
			Name:     *loadInstance,
			Instance: in,
			Rating:   func(model.UserID, model.ItemID) float64 { return 0 },
		}
	}
	switch {
	case ds != nil:
		// loaded from file
	default:
		switch *dsName {
		case "amazon":
			ds, err = dataset.AmazonLike(dc)
		case "epinions":
			ds, err = dataset.EpinionsLike(dc)
		case "synthetic":
			ds, err = dataset.Scalability(*users, dc)
		default:
			err = fmt.Errorf("unknown dataset %q", *dsName)
		}
		if err != nil {
			fail(err)
		}
	}
	in := ds.Instance
	if *saveInstance != "" {
		if werr := writeFileWith(*saveInstance, func(w *os.File) error {
			return codec.EncodeInstance(w, in)
		}); werr != nil {
			fail(werr)
		}
		fmt.Printf("instance saved to %s\n", *saveInstance)
	}
	fmt.Printf("dataset %s: %d users, %d items, %d classes, %d candidate triples, T=%d, k=%d\n",
		ds.Name, in.NumUsers, in.NumItems(), in.NumClasses(), in.NumCandidates(), in.T, in.K)

	start := time.Now()
	var res core.Result
	switch *algo {
	case "GG":
		res = core.GGreedy(in)
	case "GG-No":
		res = core.GlobalNo(in)
	case "SLG":
		res = core.SLGreedy(in)
	case "RLG":
		res = core.RLGreedy(in, *perms, *seed+1)
	case "TopRev":
		res = core.TopRE(in)
	case "TopRat":
		res = core.TopRA(in, core.RatingFn(ds.Rating))
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}
	elapsed := time.Since(start)

	fmt.Printf("algorithm      : %s\n", *algo)
	fmt.Printf("expected revenue: %.2f\n", res.Revenue)
	fmt.Printf("selections     : %d triples\n", res.Strategy.Len())
	fmt.Printf("runtime        : %v\n", elapsed.Round(time.Millisecond))
	if res.Recomputations > 0 {
		fmt.Printf("lazy recomputes: %d\n", res.Recomputations)
	}
	if err := in.CheckValid(res.Strategy); err != nil {
		fail(fmt.Errorf("output strategy invalid: %w", err))
	}
	// Per-time-step breakdown.
	perT := make(map[model.TimeStep]int)
	for _, z := range res.Strategy.Triples() {
		perT[z.T]++
	}
	fmt.Print("per time step  :")
	for t := model.TimeStep(1); int(t) <= in.T; t++ {
		fmt.Printf(" t%d=%d", t, perT[t])
	}
	fmt.Println()
	if *saveStrategy != "" {
		if werr := writeFileWith(*saveStrategy, func(w *os.File) error {
			return codec.EncodeStrategy(w, res.Strategy)
		}); werr != nil {
			fail(werr)
		}
		fmt.Printf("strategy saved to %s\n", *saveStrategy)
	}
}

// writeFileWith creates path and runs write against it.
func writeFileWith(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseCap(s string) (dataset.CapacityDist, error) {
	switch s {
	case "normal":
		return dataset.CapGaussian, nil
	case "exponential":
		return dataset.CapExponential, nil
	case "power":
		return dataset.CapPowerLaw, nil
	case "uniform":
		return dataset.CapUniform, nil
	}
	return 0, fmt.Errorf("unknown capacity distribution %q", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "revmax:", err)
	os.Exit(1)
}
