// Benchmarks for the observability subsystem's overhead, plus the
// BENCH_obs.json CI artifact asserting the instrumented-on solve and
// recommend paths stay within the ≤3% overhead budget and the disabled
// tracer allocates nothing.
package revmax_test

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/solver"
)

// legacyBuckets and legacyRecord replicate the pre-obs serving meter's
// per-call histogram (250ns · 1.5^i geometric buckets, linear scan),
// kept verbatim as the baseline the recommend-path overhead budget is
// measured against.
var legacyBuckets = func() []int64 {
	var bs []int64
	for b := float64(250); b < 1e10; b *= 1.5 {
		bs = append(bs, int64(b))
	}
	return bs
}()

func legacyRecord(hist *[64]atomic.Int64, d time.Duration) {
	n := d.Nanoseconds()
	for i, b := range legacyBuckets {
		if n <= b {
			hist[i].Add(1)
			return
		}
	}
	hist[len(legacyBuckets)-1].Add(1)
}

func BenchmarkObsOverhead(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_total", "bench counter")
	g := reg.Gauge("bench_gauge", "bench gauge")
	h := reg.Histogram("bench_seconds", "bench histogram", obs.LatencyBuckets())

	b.Run("counter-inc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge-set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Set(float64(i))
		}
	})
	b.Run("histogram-observe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i&1023) * 1e-6)
		}
	})
	b.Run("tracer-disabled", func(b *testing.B) {
		tr := obs.NewTracer(8)
		tr.SetEnabled(false)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := tr.Start("op")
			child := sp.Child("phase")
			child.SetInt("n", int64(i))
			child.End()
			sp.End()
		}
	})
	b.Run("tracer-enabled-span", func(b *testing.B) {
		tr := obs.NewTracer(8)
		for i := 0; i < b.N; i++ {
			sp := tr.Start("op")
			child := sp.Child("phase")
			child.SetInt("n", int64(i))
			child.End()
			sp.End()
		}
	})
	b.Run("slog-json-record", func(b *testing.B) {
		l, err := obs.NewLogger(io.Discard, "json")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			l.Info("slow request", "op", "recommend", "user", i, "t", 3, "duration_ms", 1.5)
		}
	})
	b.Run("slog-text-record", func(b *testing.B) {
		l, err := obs.NewLogger(io.Discard, "text")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			l.Info("slow request", "op", "recommend", "user", i, "t", 3, "duration_ms", 1.5)
		}
	})
	b.Run("slog-off-guard", func(b *testing.B) {
		// The engine's emission sites gate every record on a nil check,
		// so a daemon without -slow-ms pays only this branch.
		var l *slog.Logger
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if l != nil {
				l.Info("slow request", "op", "recommend", "user", i)
			}
		}
	})

	in := benchDataset(b).Instance
	b.Run("ggreedy-plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.GGreedy(in)
		}
	})
	b.Run("ggreedy-traced", func(b *testing.B) {
		tr := obs.NewTracer(8)
		for i := 0; i < b.N; i++ {
			sp := tr.Start("plan")
			if _, err := solver.Solve(context.Background(), in, solver.Options{Span: sp}); err != nil {
				b.Fatal(err)
			}
			sp.End()
		}
	})
}

// TestObsBenchReport, gated on BENCH_OBS_OUT, measures the solve path
// with tracing on vs off and the per-primitive obs costs, writes
// BENCH_obs.json, and fails if the instrumented paths exceed the 3%
// overhead budget or the disabled tracer allocates.
func TestObsBenchReport(t *testing.T) {
	out := os.Getenv("BENCH_OBS_OUT")
	if out == "" {
		t.Skip("set BENCH_OBS_OUT=<path> to write the obs overhead report")
	}

	// min-of-3: the minimum is the run least disturbed by the machine,
	// which is the right estimator for an overhead comparison.
	minOf3 := func(fn func(i int)) float64 {
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					fn(i)
				}
			})
			if ns := float64(r.NsPerOp()); rep == 0 || ns < best {
				best = ns
			}
		}
		return best
	}

	bench1 := func(fn func(i int)) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn(i)
			}
		})
		return float64(r.NsPerOp())
	}
	in := benchDataset(t).Instance
	tr := obs.NewTracer(8)
	plain := func(int) { core.GGreedy(in) }
	traced := func(int) {
		sp := tr.Start("plan")
		if _, err := solver.Solve(context.Background(), in, solver.Options{Span: sp}); err != nil {
			t.Fatal(err)
		}
		sp.End()
	}
	// Pair each plain measurement with a traced one and keep the rep with
	// the smallest ratio: machine-load drift hits both sides of a pair,
	// so one clean rep yields the true overhead, where independent
	// min-of-N comparisons are skewed by drift between the two blocks.
	plainNs, tracedNs, solveOverhead := 0.0, 0.0, 0.0
	for rep := 0; rep < 4; rep++ {
		p := bench1(plain)
		tn := bench1(traced)
		if o := (tn - p) / p; rep == 0 || o < solveOverhead {
			plainNs, tracedNs, solveOverhead = p, tn, o
		}
	}
	if solveOverhead < 0 {
		solveOverhead = 0 // noise: traced run measured faster than plain
	}
	if solveOverhead > 0.03 {
		t.Errorf("traced solve overhead %.2f%% exceeds the 3%% budget (plain %.0f ns, traced %.0f ns)",
			100*solveOverhead, plainNs, tracedNs)
	}

	// Recommend path. "Instrumented-on overhead" is measured against the
	// pre-obs serving path, which already metered every lookup with two
	// clock reads, an atomic add, and a linear scan over 43 geometric
	// buckets (legacyRecord below, kept verbatim). The new path loads the
	// counter for the 1-in-8 sampling decision and pays the clock reads
	// and histogram observe only on sampled calls, so the per-call delta
	// vs the old instrumentation — the cost this PR adds — must stay
	// within 3% of a lookup.
	prim := func(fn func(i int)) float64 {
		ns := minOf3(fn) - minOf3(func(int) {})
		if ns < 0 {
			ns = 0
		}
		return ns
	}
	reg := obs.NewRegistry()
	c := reg.Counter("bench_total", "bench counter")
	h := reg.Histogram("bench_seconds", "bench histogram", obs.LatencyBuckets())
	incNs := prim(func(int) { c.Inc() })
	loadNs := prim(func(int) { _ = c.Value() })
	histNs := prim(func(i int) { h.Observe(float64(i&1023) * 1e-6) })
	nowNs := prim(func(int) { _ = time.Now() })
	var legacyHist [64]atomic.Int64
	legacyNs := prim(func(i int) { legacyRecord(&legacyHist, time.Duration(i&4095)*time.Nanosecond) })

	oldObsPerRecommend := 2*nowNs + incNs + legacyNs
	newObsPerRecommend := loadNs + incNs + (2*nowNs+histNs)/8

	engine, err := serve.NewEngine(in, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	// Drive lookups that actually hit planned entries (shard lock, fill,
	// allocation) — the serving path the budget is defined over.
	triples := engine.Strategy().Triples()
	if len(triples) == 0 {
		t.Fatal("plan is empty; recommend benchmark would measure nothing")
	}
	recommendNs := minOf3(func(i int) {
		z := triples[i%len(triples)]
		if _, err := engine.Recommend(z.U, z.T); err != nil {
			t.Fatal(err)
		}
	})
	recOverhead := (newObsPerRecommend - oldObsPerRecommend) / recommendNs
	if recOverhead < 0 {
		recOverhead = 0 // sampling made the new path cheaper than the old
	}
	if recOverhead > 0.03 {
		t.Errorf("recommend-path obs overhead %.2f%% exceeds the 3%% budget (old %.1f ns, new %.1f ns, lookup %.0f ns)",
			100*recOverhead, oldObsPerRecommend, newObsPerRecommend, recommendNs)
	}

	// The disabled tracer must be allocation-free on the instrumented
	// shape the engine uses (root span, child, attribute, end).
	dis := obs.NewTracer(8)
	dis.SetEnabled(false)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := dis.Start("op")
		child := sp.Child("phase")
		child.SetInt("n", 1)
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocates %.1f per op, want 0", allocs)
	}

	// Per-span cost with tracing on vs off, for the report: the enabled
	// number is what a head-sampled request pays, the disabled one is the
	// floor every other request sees if tracing is switched off entirely.
	en := obs.NewTracer(8)
	spanNs := prim(func(i int) {
		sp := en.Start("op")
		child := sp.Child("phase")
		child.SetInt("n", int64(i))
		child.End()
		sp.End()
	})
	disabledNs := prim(func(i int) {
		sp := dis.Start("op")
		child := sp.Child("phase")
		child.SetInt("n", int64(i))
		child.End()
		sp.End()
	})

	// Structured-logging record cost at the slow-request emission shape,
	// and the nil-logger guard a daemon without -slow-ms pays instead.
	jsonLog, err := obs.NewLogger(io.Discard, "json")
	if err != nil {
		t.Fatal(err)
	}
	textLog, err := obs.NewLogger(io.Discard, "text")
	if err != nil {
		t.Fatal(err)
	}
	slogJSONNs := prim(func(i int) {
		jsonLog.Info("slow request", "op", "recommend", "user", i, "t", 3, "duration_ms", 1.5)
	})
	slogTextNs := prim(func(i int) {
		textLog.Info("slow request", "op", "recommend", "user", i, "t", 3, "duration_ms", 1.5)
	})
	var offLog *slog.Logger
	slogOffNs := prim(func(i int) {
		if offLog != nil {
			offLog.Info("slow request", "op", "recommend", "user", i)
		}
	})

	// The unsampled serving path must be allocation-free even with the
	// tracer enabled. A (u,t) with no planned entries isolates the
	// instrumentation (the lookup returns nil without filling a slice);
	// a fresh engine's counter starts at 0, AllocsPerRun's untimed
	// warmup call consumes the n=0 head sample, and the 800 measured
	// calls run at n ∈ [1,800] — never hitting the 1-in-1024 trace
	// sample, while the 1-in-8 latency samples they do hit are atomic
	// clock-and-observe with no allocation.
	var emptyU model.UserID
	var emptyT model.TimeStep
	foundEmpty := false
	for u := 0; u < in.NumUsers && !foundEmpty; u++ {
		for tt := 1; tt <= in.T && !foundEmpty; tt++ {
			recs, err := engine.Recommend(model.UserID(u), model.TimeStep(tt))
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) == 0 {
				emptyU, emptyT = model.UserID(u), model.TimeStep(tt)
				foundEmpty = true
			}
		}
	}
	unsampledAllocs := 0.0
	if !foundEmpty {
		t.Log("every (u,t) has planned entries; skipping unsampled-path alloc check")
	} else {
		fresh, err := serve.NewEngine(in, serve.Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer fresh.Close()
		unsampledAllocs = testing.AllocsPerRun(800, func() {
			if _, err := fresh.Recommend(emptyU, emptyT); err != nil {
				t.Fatal(err)
			}
		})
		if unsampledAllocs != 0 {
			t.Errorf("unsampled recommend path allocates %.2f per op, want 0", unsampledAllocs)
		}
	}

	report := map[string]any{
		"benchmark":                  "ObsOverhead",
		"ggreedy_plain_ns":           plainNs,
		"ggreedy_traced_ns":          tracedNs,
		"solve_overhead_frac":        solveOverhead,
		"counter_inc_ns":             incNs,
		"counter_load_ns":            loadNs,
		"histogram_observe_ns":       histNs,
		"time_now_ns":                nowNs,
		"recommend_ns":               recommendNs,
		"recommend_obs_old_ns":       oldObsPerRecommend,
		"recommend_obs_new_ns":       newObsPerRecommend,
		"recommend_overhead_frac":    recOverhead,
		"disabled_tracer_allocs":     allocs,
		"tracer_span_ns":             spanNs,
		"tracer_disabled_ns":         disabledNs,
		"slog_json_record_ns":        slogJSONNs,
		"slog_text_record_ns":        slogTextNs,
		"slog_off_guard_ns":          slogOffNs,
		"unsampled_recommend_allocs": unsampledAllocs,
		"overhead_budget_frac":       0.03,
	}
	fh, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	enc := json.NewEncoder(fh)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	t.Logf("solve overhead %.2f%%, recommend obs cost %.2f%% — wrote %s",
		100*solveOverhead, 100*recOverhead, out)
}
