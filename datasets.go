package revmax

import (
	"repro/internal/dataset"
	"repro/internal/experiments"
)

// Dataset generation facade — synthetic stand-ins for the paper's
// Amazon and Epinions crawls plus the scalability series (§6.1, Table 1).
type (
	// Dataset couples a generated instance with the rating predictor that
	// produced its adoption probabilities.
	Dataset = dataset.Dataset
	// DatasetConfig shapes generation (scale, capacities, saturation...).
	DatasetConfig = dataset.Config
	// DatasetStats is one row of Table 1.
	DatasetStats = dataset.Stats
	// CapacityDist selects the per-item capacity distribution.
	CapacityDist = dataset.CapacityDist
)

// Capacity distributions tested in §6.1.
const (
	CapGaussian    = dataset.CapGaussian
	CapExponential = dataset.CapExponential
	CapPowerLaw    = dataset.CapPowerLaw
	CapUniform     = dataset.CapUniform
)

// AmazonLike generates the Amazon-electronics stand-in (23.0K users,
// 4.2K items, 681K ratings, 94 skewed classes at Scale = 1).
func AmazonLike(cfg DatasetConfig) (*Dataset, error) { return dataset.AmazonLike(cfg) }

// EpinionsLike generates the Epinions stand-in (21.3K users, 1.1K items,
// 32.9K ratings, 43 classes; prices learned via KDE at Scale = 1).
func EpinionsLike(cfg DatasetConfig) (*Dataset, error) { return dataset.EpinionsLike(cfg) }

// Scalability generates the synthetic runtime-scaling series of §6.1.
func Scalability(numUsers int, cfg DatasetConfig) (*Dataset, error) {
	return dataset.Scalability(numUsers, cfg)
}

// Experiment harness facade — regenerates every table and figure.
type (
	// ExperimentConfig shapes experiment runs (scale, seed, permutations).
	ExperimentConfig = experiments.Config
)

// Experiment runners (§6 evaluation + §7 extension). Each result has a
// Render method printing the paper's rows/series.
var (
	Table1       = experiments.Table1
	Table2       = experiments.Table2
	Figure1      = experiments.Figure1
	Figure2      = experiments.Figure2
	Figure3      = experiments.Figure3
	Figure4      = experiments.Figure4
	Figure5      = experiments.Figure5
	Figure6      = experiments.Figure6
	Figure7      = experiments.Figure7
	RandomPrices = experiments.RandomPrices
	Ablation     = experiments.Ablation
)
