package revmax_test

import (
	"context"
	"fmt"
	"strings"
	"time"

	revmax "repro"
)

// ExampleSolve runs the unified solver entry point on a tiny two-user
// catalog: the algorithm is named, the context bounds the run, and the
// result carries the chosen strategy with its expected revenue.
func ExampleSolve() {
	in := revmax.NewInstance(2, 2, 1, 1) // 2 users, 2 items, T=1, k=1
	in.SetItem(0, 0, 1, 2)               // item 0: class 0, no saturation, capacity 2
	in.SetItem(1, 1, 1, 2)
	in.SetPrice(0, 1, 40)
	in.SetPrice(1, 1, 10)
	in.AddCandidate(0, 0, 1, 0.5)  // user 0 adopts item 0 w.p. 0.5 → 20 expected
	in.AddCandidate(0, 1, 1, 0.9)  // ... but item 1 only yields 9
	in.AddCandidate(1, 1, 1, 0.25) // user 1: item 1 → 2.5 expected
	in.FinishCandidates()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := revmax.Solve(ctx, in, revmax.Options{Algorithm: "g-greedy"})
	if err != nil {
		panic(err)
	}
	fmt.Printf("revenue %.1f from %d recommendations\n", res.Revenue, res.Strategy.Len())
	for _, z := range res.Strategy.Triples() {
		fmt.Printf("recommend item %d to user %d at t=%d\n", z.I, z.U, z.T)
	}
	// Output:
	// revenue 22.5 from 2 recommendations
	// recommend item 0 to user 0 at t=1
	// recommend item 1 to user 1 at t=1
}

// ExampleList enumerates the registered algorithms — the names valid in
// Options.Algorithm, scenario declarations, and revmaxd's -algo flag.
func ExampleList() {
	fmt.Println(strings.Join(revmax.List(), "\n"))
	// Output:
	// g-greedy
	// g-greedy-no
	// g-greedy-parallel
	// g-greedy-staged
	// local-search
	// naive-greedy
	// optimal
	// rl-greedy
	// rl-greedy-parallel
	// rl-greedy-staged
	// sl-greedy
	// top-rating
	// top-revenue
}
