// Package revmax is a Go implementation of "Show Me the Money: Dynamic
// Recommendations for Revenue Maximization" (Lu, Chen, Li, Lakshmanan —
// PVLDB 7(14), 2014). It provides the REVMAX revenue model (prices,
// valuations, saturation, competition over a finite horizon), the
// greedy recommendation algorithms of §5 (Global Greedy with two-level
// heaps and lazy forward, Sequential and Randomized Local Greedy), the
// baselines and approximation machinery of §4/§6, dataset generators
// replicating the paper's evaluation data, and an experiment harness
// regenerating every table and figure.
//
// Quick start:
//
//	in := revmax.NewInstance(numUsers, numItems, horizon, k)
//	in.SetItem(item, class, beta, capacity)
//	in.SetPrice(item, t, price)
//	in.AddCandidate(user, item, t, q)
//	in.FinishCandidates()
//	res, err := revmax.Solve(ctx, in, revmax.Options{Algorithm: "g-greedy"})
//	fmt.Println(res.Revenue, res.Strategy.Triples())
//
// Solve is the unified entry point: every algorithm — the §5 greedies,
// the staged §6.3 variants, the §6.1 baselines, the §4.2 local-search
// approximation — is registered under a name (List enumerates them),
// runs under a context (cancellation and deadlines abort the inner
// loops promptly), and reports progress through Options.Progress. The
// per-algorithm free functions (GGreedy, RLGreedy, ...) remain as thin
// deprecated wrappers with byte-identical output.
//
// The package is a thin facade over the internal subsystem packages; all
// types are aliases, so values flow freely between the facade and any
// internal API an advanced user might reach for.
package revmax

import (
	"context"

	"repro/internal/core"
	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/poibin"
	"repro/internal/randprice"
	"repro/internal/revenue"
	"repro/internal/solver"
)

// Core model types.
type (
	// Instance is a complete REVMAX problem instance (§3.1).
	Instance = model.Instance
	// Strategy is a set of (user, item, time) recommendation triples.
	Strategy = model.Strategy
	// Triple is a single recommendation.
	Triple = model.Triple
	// Candidate couples a triple with its primitive adoption probability.
	Candidate = model.Candidate
	// CandID is a dense, stable candidate index assigned by
	// Instance.FinishCandidates — the currency of the flat hot path.
	CandID = model.CandID
	// Plan is the flat candidate-indexed strategy representation: a
	// bitset over CandID with O(1) constraint-checked set operations.
	// Construct with Instance.NewPlan; convert with Plan.Strategy and
	// Instance.PlanOf.
	Plan = model.Plan
	// UserID identifies a user.
	UserID = model.UserID
	// ItemID identifies an item.
	ItemID = model.ItemID
	// ClassID identifies a competition class.
	ClassID = model.ClassID
	// TimeStep is a 1-based time step in the horizon.
	TimeStep = model.TimeStep
	// Result is the output of a recommendation algorithm.
	Result = core.Result
	// RatingFn supplies predicted ratings to the TopRA baseline.
	RatingFn = core.RatingFn
)

// NewInstance allocates an instance with numUsers users, numItems items,
// horizon [1, horizon], and per-(user, time) display limit k.
func NewInstance(numUsers, numItems, horizon, k int) *Instance {
	return model.NewInstance(numUsers, numItems, horizon, k)
}

// NewStrategy returns an empty strategy.
func NewStrategy() *Strategy { return model.NewStrategy() }

// StrategyOf builds a strategy from explicit triples.
func StrategyOf(ts ...Triple) *Strategy { return model.StrategyOf(ts...) }

// Unified solver API — one entry point over the whole algorithm suite,
// backed by the internal/solver registry.
type (
	// Options configures a Solve call: the algorithm name plus every
	// tunable the suite understands (permutations, seed, workers,
	// staged cut-offs, local-search epsilon/oracle, rating predictor,
	// progress callback). The zero value runs G-Greedy with defaults.
	Options = solver.Options
	// Algorithm is one registered solving strategy; implement it (and
	// RegisterAlgorithm it) to make a custom planner nameable from
	// configs, scenarios, and the serving daemon.
	Algorithm = solver.Algorithm
	// Progress is one in-flight progress report from a running solve.
	Progress = core.Progress
	// ProgressFn receives Progress reports via Options.Progress.
	ProgressFn = core.ProgressFn
)

// DefaultAlgorithm is the name an empty Options.Algorithm resolves to.
const DefaultAlgorithm = solver.DefaultAlgorithm

// Solve runs the named algorithm on in under ctx. Cancellation and
// deadlines propagate into the algorithms' inner loops, which abort
// promptly with ctx.Err(); a canceled Solve never returns a Result
// without a non-nil error. See List for the registered names.
func Solve(ctx context.Context, in *Instance, opts Options) (Result, error) {
	return solver.Solve(ctx, in, opts)
}

// List returns the canonical names of every registered algorithm,
// sorted (aliases like "GG" resolve through Lookup but are not listed).
func List() []string { return solver.List() }

// Lookup resolves an algorithm name or alias, case-insensitively.
func Lookup(name string) (Algorithm, error) { return solver.Lookup(name) }

// RegisterAlgorithm adds a custom algorithm to the global registry; it
// panics on duplicate names (call it from an init function).
func RegisterAlgorithm(a Algorithm) { solver.Register(a) }

// GGreedy runs Global Greedy (Algorithm 1): two-level heaps plus lazy
// forward, selecting the highest-marginal-revenue triple each step.
//
// Deprecated: use Solve(ctx, in, Options{Algorithm: "g-greedy"}), which
// adds cancellation and progress reporting. Output is byte-identical.
func GGreedy(in *Instance) Result { return core.GGreedy(in) }

// GGreedyStaged runs Global Greedy with prices revealed in sub-horizons
// split at the given cut-offs (§6.3).
//
// Deprecated: use Solve with Options{Algorithm: "g-greedy-staged",
// Cuts: cuts}. Output is byte-identical.
func GGreedyStaged(in *Instance, cuts ...int) Result { return core.GGreedyStaged(in, cuts...) }

// SLGreedy runs Sequential Local Greedy (Algorithm 2): per-time-step
// greedy in chronological order.
//
// Deprecated: use Solve with Options{Algorithm: "sl-greedy"}. Output is
// byte-identical.
func SLGreedy(in *Instance) Result { return core.SLGreedy(in) }

// RLGreedy runs Randomized Local Greedy: n sampled permutations of the
// horizon, best strategy kept (§5.2).
//
// Deprecated: use Solve with Options{Algorithm: "rl-greedy", Perms: n,
// Seed: seed}. Output is byte-identical.
func RLGreedy(in *Instance, n int, seed uint64) Result { return core.RLGreedy(in, n, seed) }

// RLGreedyParallel is RLGreedy with permutation runs executed
// concurrently (workers ≤ 0 means GOMAXPROCS); output is identical to
// the sequential version for the same seed.
//
// Deprecated: use Solve with Options{Algorithm: "rl-greedy-parallel",
// Perms: n, Seed: seed, Workers: workers}. Output is byte-identical.
func RLGreedyParallel(in *Instance, n int, seed uint64, workers int) Result {
	return core.RLGreedyParallel(in, n, seed, workers)
}

// RLGreedyStaged is RLGreedy under gradual price availability (§6.3).
//
// Deprecated: use Solve with Options{Algorithm: "rl-greedy-staged",
// Perms: n, Seed: seed, Cuts: cuts}. Output is byte-identical.
func RLGreedyStaged(in *Instance, n int, seed uint64, cuts ...int) Result {
	return core.RLGreedyStaged(in, n, seed, cuts...)
}

// TopRA is the top-rating baseline: k highest-predicted-rating items per
// user, repeated across the horizon.
//
// Deprecated: use Solve with Options{Algorithm: "top-rating", Rating:
// rating}. Output is byte-identical.
func TopRA(in *Instance, rating RatingFn) Result { return core.TopRA(in, rating) }

// TopRE is the top-expected-revenue baseline: k items maximizing
// p(i,t)·q(u,i,t) per user per step.
//
// Deprecated: use Solve with Options{Algorithm: "top-revenue"}. Output
// is byte-identical.
func TopRE(in *Instance) Result { return core.TopRE(in) }

// GlobalNo is G-Greedy with saturation ignored during selection and
// restored during evaluation (the GG-No baseline of §6.1).
//
// Deprecated: use Solve with Options{Algorithm: "g-greedy-no"}. Output
// is byte-identical.
func GlobalNo(in *Instance) Result { return core.GlobalNo(in) }

// Optimal exhaustively solves tiny instances (≤ ~22 candidates); REVMAX
// is NP-hard (Theorem 1), so this exists for validation only.
//
// Deprecated: use Solve with Options{Algorithm: "optimal"}, which also
// honors deadlines inside the exponential search.
func Optimal(in *Instance) (Result, error) { return core.Optimal(in) }

// Revenue computes the expected revenue Rev(S) of Definition 2.
func Revenue(in *Instance, s *Strategy) float64 { return revenue.Revenue(in, s) }

// DynamicProb computes the dynamic adoption probability q_S(u,i,t) of
// Definition 1 (0 when the triple is not in S).
func DynamicProb(in *Instance, s *Strategy, z Triple) float64 {
	return revenue.DynamicProb(in, s, z)
}

// MarginalRevenue computes Rev(S ∪ {z}) − Rev(S) (Definition 3).
func MarginalRevenue(in *Instance, s *Strategy, z Triple) float64 {
	return revenue.MarginalRevenue(in, s, z)
}

// CapacityOracle estimates the Poisson-binomial capacity factor B_S(i,t)
// of Definition 4.
type CapacityOracle = revenue.CapacityOracle

// ExactOracle computes B_S exactly by dynamic programming.
type ExactOracle = poibin.ExactOracle

// NewMonteCarloOracle returns the paper's sampling estimator for B_S.
func NewMonteCarloOracle(samples int, seed uint64) CapacityOracle {
	return poibin.NewMonteCarloOracle(samples, seed)
}

// EffectiveRevenue computes the R-REVMAX objective: Definition 2 with
// the effective dynamic adoption probability of Definition 4.
func EffectiveRevenue(in *Instance, s *Strategy, oracle CapacityOracle) float64 {
	return revenue.EffectiveRevenue(in, s, oracle)
}

// LocalSearchRRevMax runs the 1/(4+ε)-approximation of §4.2 for
// R-REVMAX: local search over the display partition matroid with the
// capacity constraint pushed into the effective-revenue objective. It is
// exponential-ish in practice (O(ε⁻¹ n⁴ log n) oracle calls) and meant
// for small instances.
//
// Deprecated: use Solve with Options{Algorithm: "local-search",
// Oracle: oracle, Epsilon: epsilon}, which adds cancellation (the
// context reaches into the oracle calls). Output is byte-identical.
func LocalSearchRRevMax(in *Instance, oracle CapacityOracle, epsilon float64) Result {
	res, _ := solver.Solve(context.Background(), in, Options{
		Algorithm: "local-search",
		Oracle:    oracle,
		Epsilon:   epsilon,
	})
	return res
}

// SolveT1 solves the PTIME T = 1 special case exactly via maximum-weight
// degree-constrained subgraphs (§3.2). See internal/matching for the
// documented caveat about same-time competition when k > 1.
func SolveT1(in *Instance, t TimeStep) (*Strategy, float64, error) {
	res, err := matching.SolveT1(in, t)
	if err != nil {
		return nil, 0, err
	}
	return res.Strategy, res.Weight, nil
}

// RandomPriceModel is the §7 extension: expected revenue under random
// prices via second-order Taylor approximation.
type RandomPriceModel = randprice.Model

// AdoptFn maps a triple and a realized price to a primitive adoption
// probability (the price-dependent q̃ of the random-price model).
type AdoptFn = randprice.AdoptFn
