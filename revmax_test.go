package revmax_test

import (
	"math"
	"testing"

	revmax "repro"
)

// buildIntro builds the introduction's motivating scenario: a smartphone
// going on sale at t = 3, one high-valuation user and one low-valuation
// user. Strategic timing should recommend before the drop to the
// high-valuation user and at/after the drop to the low-valuation user.
func buildIntro() *revmax.Instance {
	in := revmax.NewInstance(2, 1, 4, 1)
	in.SetItem(0, 0, 0.8, 2)
	prices := []float64{500, 500, 350, 350} // sale from t = 3
	// valuations: user 0 ≈ 520 (buys at full price), user 1 ≈ 380.
	val := []float64{520, 380}
	for t := 1; t <= 4; t++ {
		in.SetPrice(0, revmax.TimeStep(t), prices[t-1])
		for u := 0; u < 2; u++ {
			// Simple sharp valuation: q high when price ≤ valuation.
			q := 0.05
			if prices[t-1] <= val[u] {
				q = 0.6
			}
			in.AddCandidate(revmax.UserID(u), 0, revmax.TimeStep(t), q)
		}
	}
	in.FinishCandidates()
	return in
}

func TestFacadeQuickstartFlow(t *testing.T) {
	in := buildIntro()
	res := revmax.GGreedy(in)
	if err := in.CheckValid(res.Strategy); err != nil {
		t.Fatal(err)
	}
	if res.Revenue <= 0 {
		t.Fatal("no revenue on the intro scenario")
	}
	if got := revmax.Revenue(in, res.Strategy); math.Abs(got-res.Revenue) > 1e-9 {
		t.Fatalf("facade Revenue %v != reported %v", got, res.Revenue)
	}
}

func TestStrategicTimingOnIntroScenario(t *testing.T) {
	// The paper's motivating claim (§1): recommend before the sale to
	// high-valuation users, at the sale to low-valuation users. G-Greedy's
	// first recommendation per user should respect that split.
	in := buildIntro()
	res := revmax.GGreedy(in)
	firstRec := map[revmax.UserID]revmax.TimeStep{}
	for _, z := range res.Strategy.Triples() {
		if cur, ok := firstRec[z.U]; !ok || z.T < cur {
			firstRec[z.U] = z.T
		}
	}
	if firstRec[0] >= 3 {
		t.Fatalf("high-valuation user first recommended at t=%d, want before the sale", firstRec[0])
	}
	if firstRec[1] < 3 {
		t.Fatalf("low-valuation user first recommended at t=%d, want at/after the sale", firstRec[1])
	}
}

func TestFacadeAlgorithmsAgree(t *testing.T) {
	in := buildIntro()
	gg := revmax.GGreedy(in)
	sl := revmax.SLGreedy(in)
	rl := revmax.RLGreedy(in, 4, 1)
	tre := revmax.TopRE(in)
	for name, r := range map[string]revmax.Result{"GG": gg, "SLG": sl, "RLG": rl, "TopRE": tre} {
		if err := in.CheckValid(r.Strategy); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
	}
	if gg.Revenue < tre.Revenue-1e-9 {
		t.Fatalf("GG (%v) below TopRE (%v) on strategic-timing scenario", gg.Revenue, tre.Revenue)
	}
}

func TestFacadeOptimalAndLocalSearch(t *testing.T) {
	in := buildIntro()
	opt, err := revmax.Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	gg := revmax.GGreedy(in)
	if gg.Revenue > opt.Revenue+1e-9 {
		t.Fatalf("greedy %v exceeds optimum %v", gg.Revenue, opt.Revenue)
	}
	ls := revmax.LocalSearchRRevMax(in, revmax.ExactOracle{}, 0.25)
	if ls.Strategy.Len() == 0 {
		t.Fatal("local search returned empty strategy on a profitable instance")
	}
	// R-REVMAX relaxes capacity, so its objective can only exceed the
	// constrained optimum's effective revenue — sanity: positive value.
	if ls.Revenue <= 0 {
		t.Fatalf("local search value %v", ls.Revenue)
	}
}

func TestFacadeSolveT1(t *testing.T) {
	in := revmax.NewInstance(2, 2, 1, 1)
	in.SetItem(0, 0, 1, 1)
	in.SetItem(1, 1, 1, 1)
	in.SetPrice(0, 1, 10)
	in.SetPrice(1, 1, 8)
	in.AddCandidate(0, 0, 1, 0.9) // 9.0
	in.AddCandidate(0, 1, 1, 0.9) // 7.2
	in.AddCandidate(1, 0, 1, 0.5) // 5.0
	in.AddCandidate(1, 1, 1, 0.9) // 7.2
	in.FinishCandidates()
	s, weight, err := revmax.SolveT1(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal assignment: u0→i0 (9.0) + u1→i1 (7.2).
	if math.Abs(weight-16.2) > 1e-9 {
		t.Fatalf("weight = %v, want 16.2", weight)
	}
	if s.Len() != 2 {
		t.Fatalf("strategy size %d, want 2", s.Len())
	}
}

func TestFacadeDatasetsAndExperiments(t *testing.T) {
	ds, err := revmax.AmazonLike(revmax.DatasetConfig{Seed: 1, Scale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Instance.NumCandidates() == 0 {
		t.Fatal("no candidates")
	}
	res := revmax.TopRA(ds.Instance, revmax.RatingFn(ds.Rating))
	if err := ds.Instance.CheckValid(res.Strategy); err != nil {
		t.Fatal(err)
	}
	t1, err := revmax.Table1(revmax.ExperimentConfig{Scale: 0.004, Seed: 3, Perms: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) == 0 || t1.Render() == "" {
		t.Fatal("Table1 empty")
	}
}

func TestFacadeRandomPriceModel(t *testing.T) {
	in := buildIntro()
	m := &revmax.RandomPriceModel{
		In: in,
		Adopt: func(u revmax.UserID, i revmax.ItemID, tt revmax.TimeStep, price float64) float64 {
			return in.Q(u, i, tt)
		},
		Var: func(revmax.ItemID, revmax.TimeStep) float64 { return 0 },
	}
	s := revmax.GGreedy(in).Strategy
	if got, want := m.TaylorRevenue(s), revmax.Revenue(in, s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("zero-variance Taylor %v != deterministic %v", got, want)
	}
}

func TestFacadeEffectiveRevenueOracles(t *testing.T) {
	in := buildIntro()
	s := revmax.GGreedy(in).Strategy
	exact := revmax.EffectiveRevenue(in, s, revmax.ExactOracle{})
	mc := revmax.EffectiveRevenue(in, s, revmax.NewMonteCarloOracle(50000, 1))
	if math.Abs(exact-mc) > 0.02*math.Abs(exact)+0.01 {
		t.Fatalf("MC oracle %v far from exact %v", mc, exact)
	}
}
