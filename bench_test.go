// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact; see DESIGN.md §4 for the
// index), plus micro-benchmarks of the load-bearing primitives. Run:
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks run at a small reproduction scale so the full
// suite completes in seconds; use cmd/experiments -scale to reproduce at
// larger scales.
package revmax_test

import (
	"testing"

	revmax "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/mf"
	"repro/internal/model"
	"repro/internal/poibin"
	"repro/internal/revenue"
	"repro/internal/scenario"
)

// benchCfg is the shared experiment scale for benchmarks.
func benchCfg() experiments.Config {
	return experiments.Config{Scale: 0.003, Seed: 42, Perms: 3}
}

func benchDataset(b testing.TB) *dataset.Dataset {
	b.Helper()
	ds, err := dataset.AmazonLike(dataset.Config{Seed: 42, Scale: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// --- One benchmark per paper table/figure -------------------------------

func BenchmarkTable1DataStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1Revenue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2Saturation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3SaturationSingleton(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4Growth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5Repeats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Runtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6Scalability(b *testing.B) {
	cfg := benchCfg()
	cfg.Scale = 0.002
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7IncompletePrices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomPricesTaylor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RandomPrices(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Algorithm micro-benchmarks on a fixed Amazon-like instance ---------

func BenchmarkGGreedy(b *testing.B) {
	ds := benchDataset(b)
	b.ReportMetric(float64(ds.Instance.NumCandidates()), "candidates")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GGreedy(ds.Instance)
	}
}

func BenchmarkSLGreedy(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SLGreedy(ds.Instance)
	}
}

func BenchmarkRLGreedy(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RLGreedy(ds.Instance, 5, 1)
	}
}

func BenchmarkTopRE(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.TopRE(ds.Instance)
	}
}

func BenchmarkTopRA(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.TopRA(ds.Instance, core.RatingFn(ds.Rating))
	}
}

// --- Primitive micro-benchmarks -----------------------------------------

func BenchmarkEvaluatorMarginalGain(b *testing.B) {
	ds := benchDataset(b)
	in := ds.Instance
	ev := revenue.NewEvaluator(in)
	var cands []model.Candidate
	for u := 0; u < in.NumUsers; u++ {
		cands = append(cands, in.UserCandidates(model.UserID(u))...)
	}
	for i, c := range cands {
		if i%7 == 0 {
			ev.Add(c.Triple, c.Q)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cands[i%len(cands)]
		ev.MarginalGain(c.Triple, c.Q)
	}
}

func BenchmarkPoissonBinomialTail(b *testing.B) {
	probs := make([]float64, 200)
	for i := range probs {
		probs[i] = float64(i%97) / 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		poibin.TailAtMost(probs, 50)
	}
}

func BenchmarkMFTrainEpoch(b *testing.B) {
	ratings := make([]mf.Rating, 5000)
	for i := range ratings {
		ratings[i] = mf.Rating{U: i % 200, I: (i * 7) % 100, R: float64(1 + i%5)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mf.Train(ratings, 200, 100, mf.Config{Epochs: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRevenueEvaluation(b *testing.B) {
	ds := benchDataset(b)
	res := core.GGreedy(ds.Instance)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		revenue.Revenue(ds.Instance, res.Strategy)
	}
}

func BenchmarkSolveT1MaxDCS(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := revmax.SolveT1(ds.Instance, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving hot path (internal/serve / cmd/revmaxd) ---------------------

func benchEngine(b *testing.B) *revmax.ServeEngine {
	b.Helper()
	ds := benchDataset(b)
	e, err := revmax.NewServeEngine(ds.Instance, revmax.ServeConfig{Algorithm: "g-greedy"})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	return e
}

// BenchmarkServeRecommend measures the single-lookup hot path under
// parallel load: one atomic plan load, one shard RLock, O(k) fill.
func BenchmarkServeRecommend(b *testing.B) {
	e := benchEngine(b)
	in := e.Instance()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		u := 0
		for pb.Next() {
			if _, err := e.Recommend(model.UserID(u%in.NumUsers), model.TimeStep(1+u%in.T)); err != nil {
				b.Fatal(err)
			}
			u++
		}
	})
}

// BenchmarkServeRecommendBatch measures the batch endpoint's
// lock-amortized path at 256 users per call.
func BenchmarkServeRecommendBatch(b *testing.B) {
	e := benchEngine(b)
	in := e.Instance()
	users := make([]model.UserID, 256)
	for i := range users {
		users[i] = model.UserID((i * 37) % in.NumUsers)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RecommendBatch(users, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeFeed measures feedback ingestion (enqueue + apply),
// with replanning effectively disabled so the queue cost is isolated.
func BenchmarkServeFeed(b *testing.B) {
	ds := benchDataset(b)
	e, err := revmax.NewServeEngine(ds.Instance, revmax.ServeConfig{
		Algorithm:   "g-greedy",
		ReplanEvery: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Close)
	in := ds.Instance
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := revmax.ServeEvent{
			User: model.UserID(i % in.NumUsers),
			Item: model.ItemID(i % in.NumItems()),
			T:    model.TimeStep(1 + i%in.T),
		}
		if err := e.Feed(ev); err != nil {
			b.Fatal(err)
		}
	}
	e.Flush()
}

// --- Scenario suite benchmarks (internal/scenario) -----------------------

// BenchmarkScenarioSuite times one full dual-path run (open-loop
// Monte-Carlo + closed-loop serving rollouts) per workload archetype,
// at reduced replication counts so the whole suite fits a bench smoke.
// CI publishes the full-scale structured reports separately as
// BENCH_scenarios.json via cmd/simulate.
func BenchmarkScenarioSuite(b *testing.B) {
	for _, sc := range scenario.Catalog() {
		sc := sc
		sc.Runs = 200
		sc.Trajectories = 2
		b.Run(sc.Name, func(b *testing.B) {
			var r scenario.Runner
			for i := 0; i < b.N; i++ {
				if _, err := r.Run(sc, uint64(i)+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioBuild isolates instance generation (testgen base +
// hot-item overlay) from execution.
func BenchmarkScenarioBuild(b *testing.B) {
	sc := scenario.FlashSale()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Build(sc, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md design-choice index) -----------------

func BenchmarkAblationGGTwoLevelLazy(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GGreedy(ds.Instance)
	}
}

func BenchmarkAblationGGSingleHeap(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GGreedySingleHeap(ds.Instance)
	}
}

func BenchmarkAblationGGEager(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GGreedyEager(ds.Instance)
	}
}

func BenchmarkAblationGGNaiveRescan(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NaiveGreedy(ds.Instance)
	}
}
