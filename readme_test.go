package revmax_test

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	revmax "repro"
)

// TestReadmeAlgorithmList: the "Registered algorithms" table in
// README.md names exactly the algorithms revmax.List() returns, and
// every documented alias resolves to the row's canonical name. CI runs
// this test by name, so the docs cannot drift from the registry.
func TestReadmeAlgorithmList(t *testing.T) {
	raw, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	start := strings.Index(text, "### Registered algorithms")
	if start < 0 {
		t.Fatal("README.md is missing the \"### Registered algorithms\" section")
	}
	section := text[start:]
	if end := strings.Index(section[1:], "\n#"); end >= 0 {
		section = section[:end+1]
	}

	// Table rows look like: | `name` | `Alias` | description |
	rowRE := regexp.MustCompile("(?m)^\\| `([a-z0-9-]+)` \\| ([^|]+) \\|")
	var documented []string
	aliases := make(map[string]string)
	for _, m := range rowRE.FindAllStringSubmatch(section, -1) {
		name := m[1]
		documented = append(documented, name)
		if a := strings.Trim(strings.TrimSpace(m[2]), "`"); a != "" && a != "—" {
			aliases[a] = name
		}
	}
	sort.Strings(documented)

	registered := revmax.List()
	if strings.Join(documented, ",") != strings.Join(registered, ",") {
		t.Fatalf("README algorithm table does not match revmax.List():\n  documented: %v\n  registered: %v",
			documented, registered)
	}
	for alias, canonical := range aliases {
		a, err := revmax.Lookup(alias)
		if err != nil {
			t.Errorf("README documents alias %q, which does not resolve: %v", alias, err)
			continue
		}
		if a.Name() != canonical {
			t.Errorf("README alias %q resolves to %q, table says %q", alias, a.Name(), canonical)
		}
	}
}
